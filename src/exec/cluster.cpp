#include "exec/cluster.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

#include "exec/cluster_protocol.hpp"
#include "exec/config.hpp"
#include "exec/shard.hpp"
#include "exec/shard_protocol.hpp"
#include "obs/obs.hpp"

namespace hmdiv::exec {

namespace {

using Clock = std::chrono::steady_clock;

// --- Process-global worker stats (metrics endpoint) -----------------------

std::mutex& stats_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<ClusterWorkerStats>& stats_store() {
  static std::vector<ClusterWorkerStats> store;
  return store;
}

// --- Socket helpers -------------------------------------------------------

int remaining_ms(Clock::time_point deadline) noexcept {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60'000) return 60'000;
  return static_cast<int>(left.count());
}

std::uint64_t elapsed_ns(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

/// Splits "host:port" / "[v6]:port" into its pieces; false when the shape
/// is wrong (the CLI validates earlier, this is the defensive re-check).
bool split_address(const std::string& address, std::string& host,
                   std::string& port) {
  if (!address.empty() && address.front() == '[') {
    const std::size_t close = address.find(']');
    if (close == std::string::npos || close + 1 >= address.size() ||
        address[close + 1] != ':') {
      return false;
    }
    host = address.substr(1, close - 1);
    port = address.substr(close + 2);
  } else {
    const std::size_t colon = address.rfind(':');
    if (colon == std::string::npos || address.find(':') != colon) {
      return false;
    }
    host = address.substr(0, colon);
    port = address.substr(colon + 1);
  }
  return !host.empty() && !port.empty();
}

}  // namespace

// --- Per-worker connection state ------------------------------------------

struct ClusterRunner::Conn {
  enum class State { closed, connecting, upgrading, ready };

  std::string host;
  std::string port;
  int fd = -1;
  State state = State::closed;
  bool healthy = true;  ///< this run; reset at run start
  Clock::time_point conn_deadline{};  ///< connect/upgrade budget

  // Upgrade handshake progress (non-blocking, driven by the poll loop).
  std::size_t upgrade_sent = 0;
  std::string upgrade_line;

  // Pipelined task window, FIFO: the worker replies to tasks in dispatch
  // order, each reply terminated by a done frame naming its task id.
  struct Inflight {
    std::uint32_t id = 0;  ///< span-start micro-shard == task id
    std::uint32_t span = 1;
    Clock::time_point dispatched{};
  };
  std::deque<Inflight> inflight;
  Clock::time_point head_deadline{};
  std::vector<std::uint8_t> send_buf;
  std::size_t sent = 0;
  wire::FrameParser parser;

  // Reply accumulation for the head task. Buffered until its done frame
  // so a connection that dies mid-task never half-applies a task's obs
  // delta (the retried task re-ships it).
  std::vector<std::uint8_t> cur_payload;
  bool have_payload = false;
  std::vector<std::vector<std::uint8_t>> cur_obs;

  /// True once this connection shipped the run's blob inline; follow-up
  /// tasks set blob_cached and ride the worker session's cache.
  bool blob_sent = false;

  // Adaptive sizing: EWMA of per-micro-shard service time. Persists
  // across runs on a warm connection (worker speed is a property of the
  // host, not the workload partition).
  double ewma_ns_per_shard = 0;  ///< 0 = no sample yet
  Clock::time_point last_complete{};
  std::uint64_t dispatched_micro = 0;  ///< micro-shards sent this run

  // Re-admission: one probe per run after the backoff.
  bool readmit_armed = false;
  bool probing = false;  ///< the in-progress connect is the re-probe
  bool readmitted_this_run = false;
  Clock::time_point readmit_at{};

  ClusterWorkerStats stats;

  void close_fd() {
    if (fd >= 0) ::close(fd);
    fd = -1;
    state = State::closed;
    inflight.clear();
    send_buf.clear();
    sent = 0;
    parser = wire::FrameParser{};
    cur_payload.clear();
    have_payload = false;
    cur_obs.clear();
    blob_sent = false;
    probing = false;
    upgrade_sent = 0;
    upgrade_line.clear();
  }
};

ClusterRunner::ClusterRunner(ClusterOptions options)
    : options_(std::move(options)) {
  conns_.reserve(options_.workers.size());
  for (const std::string& address : options_.workers) {
    Conn conn;
    conn.stats.address = address;
    conn.stats.window = std::max(1u, options_.window);
    if (!split_address(address, conn.host, conn.port)) {
      conn.healthy = false;
      conn.stats.last_error = "malformed worker address";
    }
    conns_.push_back(std::move(conn));
  }
}

ClusterRunner::~ClusterRunner() {
  for (Conn& conn : conns_) conn.close_fd();
}

unsigned ClusterRunner::resolved_shards() const noexcept {
  unsigned shards = options_.shards;
  if (shards == 0) {
    const unsigned configured = default_shard_count();
    shards = configured > 1 ? configured
                            : static_cast<unsigned>(conns_.size());
  }
  if (shards == 0) shards = 1;
  return shards > kMaxShards ? kMaxShards : shards;
}

std::vector<ClusterWorkerStats> ClusterRunner::worker_stats() const {
  std::vector<ClusterWorkerStats> out;
  out.reserve(conns_.size());
  for (const Conn& conn : conns_) out.push_back(conn.stats);
  return out;
}

std::vector<std::vector<std::uint8_t>> ClusterRunner::run(
    std::string_view workload, std::span<const std::uint8_t> blob,
    std::uint64_t items_hint) {
  if (conns_.empty()) {
    throw ClusterError("cluster: no workers configured");
  }
  const unsigned window = std::max(1u, options_.window);
  unsigned shards = resolved_shards();
  if (options_.shards == 0 && default_shard_count() <= 1 && items_hint > 0) {
    // Adaptive micro-shard count: enough small tasks that every worker's
    // window refills several times (so the EWMA sizing has room to act),
    // bounded by the workload's item count and the protocol ceiling.
    // Deliberately independent of the window depth: the micro-shard is
    // the unit of latency, so at a fixed grain a deeper window strictly
    // reduces the number of serialized round-trip generations per worker
    // (count/window of them) — which is the whole point of pipelining.
    const auto workers64 = static_cast<std::uint64_t>(conns_.size());
    const std::uint64_t target = workers64 * 32;
    shards = static_cast<unsigned>(std::min<std::uint64_t>(
        std::min<std::uint64_t>(items_hint, target), kMaxShards));
    if (shards == 0) shards = 1;
  }
  HMDIV_OBS_SCOPED_TIMER("exec.cluster.run_ns");
  HMDIV_OBS_COUNT("exec.cluster.runs", 1);
  const bool ship_obs = obs::enabled();
  const unsigned threads =
      options_.threads ? options_.threads : default_config().threads;

  // Pending work in micro-shard units: dispatch slices task-sized spans
  // off the front, a sidelined worker's in-flight spans requeue at the
  // front (oldest first), so coverage of [0, shards) is exact on every
  // path.
  struct Span {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  std::deque<Span> pending;
  pending.push_back(Span{0, shards});
  std::uint64_t pending_micro = shards;
  unsigned completed = 0;

  // Results keyed by span start; payload_span remembers each task's width
  // so the epilogue can walk the final partition in ascending order.
  std::vector<std::vector<std::uint8_t>> payloads(shards);
  std::vector<std::uint32_t> payload_span(shards, 0);
  std::vector<std::size_t> last_conn(shards, conns_.size());
  std::string last_failure = "no worker reachable";

  // Health, blob shipping, and re-admission are per-run; warm fds,
  // cumulative stats, and the speed EWMA persist across runs.
  for (Conn& conn : conns_) {
    conn.healthy = !conn.host.empty();
    conn.blob_sent = false;
    conn.readmit_armed = false;
    conn.probing = false;
    conn.readmitted_this_run = false;
    conn.dispatched_micro = 0;
    conn.stats.inflight = 0;
  }

  // Drops a worker: the frame stream cannot be resynced, so the fd
  // closes, every in-flight span goes back to the front of the queue in
  // dispatch order, and — once per run — a re-probe is scheduled after
  // the backoff.
  const auto sideline = [&](Conn& conn, const std::string& why) {
    conn.stats.last_error = why;
    last_failure = conn.stats.address + ": " + why;
    if (!conn.inflight.empty()) {
      conn.stats.retries += conn.inflight.size();
      HMDIV_OBS_COUNT("exec.cluster.retries", conn.inflight.size());
      for (auto it = conn.inflight.rbegin(); it != conn.inflight.rend();
           ++it) {
        pending.push_front(Span{it->id, it->id + it->span});
        pending_micro += it->span;
      }
    }
    conn.close_fd();
    conn.healthy = false;
    conn.stats.inflight = 0;
    if (options_.readmit_after.count() > 0 && !conn.readmitted_this_run) {
      conn.readmit_armed = true;
      conn.readmit_at = Clock::now() + options_.readmit_after;
    }
  };

  const auto enter_upgrade = [&](Conn& conn) {
    conn.state = Conn::State::upgrading;
    conn.upgrade_sent = 0;
    conn.upgrade_line.clear();
    conn.conn_deadline = Clock::now() + options_.connect_timeout;
    const int one = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  };

  // Kicks off a non-blocking connect; the poll loop finishes it. All
  // startup connects launch together, so startup cost is the slowest
  // worker's handshake, not the sum.
  const auto start_connect = [&](Conn& conn) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV;
    addrinfo* list = nullptr;
    const int rc =
        ::getaddrinfo(conn.host.c_str(), conn.port.c_str(), &hints, &list);
    if (rc != 0) {
      sideline(conn, std::string("resolve failed: ") + ::gai_strerror(rc));
      return;
    }
    int fd = -1;
    int last_errno = ECONNREFUSED;
    bool in_progress = false;
    for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family,
                    ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                    ai->ai_protocol);
      if (fd < 0) {
        last_errno = errno;
        continue;
      }
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      if (errno == EINPROGRESS) {
        in_progress = true;
        break;
      }
      last_errno = errno;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(list);
    if (fd < 0) {
      sideline(conn, std::string("connect failed: ") +
                         std::strerror(last_errno));
      return;
    }
    conn.fd = fd;
    if (in_progress) {
      conn.state = Conn::State::connecting;
      conn.conn_deadline = Clock::now() + options_.connect_timeout;
    } else {
      enter_upgrade(conn);
    }
  };

  const auto finish_upgrade = [&](Conn& conn, std::size_t newline) {
    const std::size_t ok = conn.upgrade_line.find("\"ok\":true");
    if (ok == std::string::npos || ok > newline) {
      sideline(conn,
               "upgrade rejected: " + conn.upgrade_line.substr(0, newline));
      return;
    }
    // Trailing bytes already belong to the frame stream (none with a
    // well-behaved worker, but the parser owns them either way).
    const std::size_t extra = conn.upgrade_line.size() - newline - 1;
    if (extra > 0) {
      conn.parser.feed(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(conn.upgrade_line.data()) +
              newline + 1,
          extra));
    }
    conn.upgrade_line.clear();
    conn.state = Conn::State::ready;
    if (conn.probing) {
      conn.probing = false;
      conn.stats.readmitted += 1;
      HMDIV_OBS_COUNT("exec.cluster.readmitted", 1);
    }
  };

  // Adaptive task size: aim for window-many refills of everyone's window
  // over the remaining work, scaled by this worker's observed speed
  // relative to the fleet mean so fast workers pull bigger spans.
  const auto task_size_for = [&](const Conn& conn) -> std::uint32_t {
    std::uint64_t active = 0;
    double speed_sum = 0;
    std::uint64_t sampled = 0;
    for (const Conn& c : conns_) {
      if (!c.healthy || c.state == Conn::State::closed) continue;
      active += 1;
      if (c.ewma_ns_per_shard > 0) {
        speed_sum += 1.0 / c.ewma_ns_per_shard;
        sampled += 1;
      }
    }
    if (active == 0) active = 1;
    double ratio = 1.0;
    if (conn.ewma_ns_per_shard > 0 && sampled > 0) {
      const double mean_speed = speed_sum / static_cast<double>(sampled);
      ratio = std::clamp((1.0 / conn.ewma_ns_per_shard) / mean_speed, 0.25,
                         4.0);
    }
    const double denom = static_cast<double>(active * window);
    auto n = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(pending_micro) * ratio / denom));
    // Never let a span swallow a worker's whole remaining share: a fully
    // grown task still leaves ~16 dispatches per active worker, so the
    // window keeps refilling (RTT stays hidden behind queued tasks), a
    // sidelined worker requeues small spans instead of one fat one, and
    // the tail is never gated by a single oversized task.
    const std::uint64_t cap = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(shards) / (active * 16));
    n = std::clamp<std::uint64_t>(n, 1, cap);
    return static_cast<std::uint32_t>(n);
  };

  const auto dispatch_one = [&](std::size_t index) {
    Conn& conn = conns_[index];
    const std::uint32_t want = task_size_for(conn);
    Span& front = pending.front();
    const std::uint32_t take = std::min(want, front.end - front.begin);
    const std::uint32_t start = front.begin;
    front.begin += take;
    if (front.begin == front.end) pending.pop_front();
    pending_micro -= take;
    for (std::uint32_t s = start; s < start + take; ++s) {
      if (last_conn[s] < conns_.size() && last_conn[s] != index) {
        HMDIV_OBS_COUNT("exec.cluster.reassigned", 1);
        break;
      }
    }
    for (std::uint32_t s = start; s < start + take; ++s) {
      last_conn[s] = index;
    }
    wire::ShardTask task;
    task.workload = std::string(workload);
    task.shard_index = start;
    task.shard_count = shards;
    task.span = take;
    task.threads = threads;
    task.obs_enabled = ship_obs;
    task.blob_cached = conn.blob_sent;
    if (!conn.blob_sent) {
      task.blob.assign(blob.begin(), blob.end());
      conn.blob_sent = true;
    }
    wire::append_frame(conn.send_buf, wire::FrameType::task,
                       wire::serialize_task(task));
    const auto now = Clock::now();
    conn.inflight.push_back(Conn::Inflight{start, take, now});
    conn.dispatched_micro += take;
    if (conn.inflight.size() == 1) {
      conn.head_deadline = now + options_.task_deadline;
    }
    conn.stats.inflight = static_cast<std::uint32_t>(conn.inflight.size());
    conn.stats.task_size = take;
    if (obs::enabled()) {
      auto& registry = obs::Registry::global();
      registry.histogram("exec.cluster.inflight")
          .record(conn.inflight.size());
      registry.histogram("exec.cluster.queue_depth").record(pending_micro);
      registry.histogram("exec.cluster.task_size").record(take);
    }
  };

  // While any connect/upgrade is still pending, cap each ready worker's
  // cumulative dispatch at its fair share of micro-shards so the first
  // worker up cannot drain the whole queue before the rest join; once
  // the fleet has settled the cap lifts and windows fill freely.
  bool startup_fairness = true;
  const auto fill_windows = [&]() {
    std::uint64_t active = 0;
    for (const Conn& conn : conns_) {
      if (conn.healthy && conn.state != Conn::State::closed) active += 1;
    }
    const std::uint64_t fair_share =
        active == 0 ? shards : (shards + active - 1) / active;
    for (;;) {
      if (pending.empty()) return;
      std::size_t best = conns_.size();
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        const Conn& conn = conns_[i];
        if (!conn.healthy || conn.state != Conn::State::ready) continue;
        if (conn.inflight.size() >= window) continue;
        if (startup_fairness && conn.dispatched_micro >= fair_share) {
          continue;
        }
        // Shallowest window first; on ties the worker that has pulled
        // the least so far, so fresh joiners get work immediately.
        if (best == conns_.size() ||
            conn.inflight.size() < conns_[best].inflight.size() ||
            (conn.inflight.size() == conns_[best].inflight.size() &&
             conn.dispatched_micro < conns_[best].dispatched_micro)) {
          best = i;
        }
      }
      if (best == conns_.size()) return;
      dispatch_one(best);
    }
  };

  const auto complete_head = [&](Conn& conn) {
    const Conn::Inflight head = conn.inflight.front();
    conn.inflight.pop_front();
    conn.stats.inflight = static_cast<std::uint32_t>(conn.inflight.size());
    for (std::vector<std::uint8_t>& snapshot : conn.cur_obs) {
      try {
        obs::Registry::global().merge(obs::parse_snapshot(snapshot));
      } catch (const std::exception& e) {
        throw ClusterError("cluster: " + conn.stats.address +
                           ": bad obs frame: " + e.what());
      }
    }
    conn.cur_obs.clear();
    payloads[head.id] = std::move(conn.cur_payload);
    conn.cur_payload = std::vector<std::uint8_t>{};
    conn.have_payload = false;
    payload_span[head.id] = head.span;
    completed += head.span;
    conn.stats.tasks += 1;
    HMDIV_OBS_COUNT("exec.cluster.tasks", 1);
    const auto now = Clock::now();
    if (obs::enabled()) {
      obs::Registry::global()
          .histogram("exec.cluster.rpc_ns")
          .record(elapsed_ns(head.dispatched, now));
    }
    // Service time excludes time the task spent queued behind its
    // window-mates, so the EWMA measures worker speed, not pipeline depth.
    const auto service_start = conn.last_complete > head.dispatched
                                   ? conn.last_complete
                                   : head.dispatched;
    const double per_shard =
        static_cast<double>(elapsed_ns(service_start, now)) /
        static_cast<double>(head.span);
    conn.ewma_ns_per_shard = conn.ewma_ns_per_shard == 0
                                 ? per_shard
                                 : 0.3 * per_shard +
                                       0.7 * conn.ewma_ns_per_shard;
    conn.last_complete = now;
    if (!conn.inflight.empty()) {
      conn.head_deadline = now + options_.task_deadline;
    }
  };

  // Drains every parsed frame; false when the connection was sidelined.
  // Throws ClusterError on structured worker errors (deterministic
  // failures reassignment cannot fix) — the caller lets those abort.
  const auto process_frames = [&](Conn& conn) -> bool {
    while (auto frame = conn.parser.next()) {
      switch (frame->type) {
        case wire::FrameType::result:
          if (conn.inflight.empty() || conn.have_payload) {
            sideline(conn, "unexpected result frame");
            return false;
          }
          conn.cur_payload = std::move(frame->payload);
          conn.have_payload = true;
          break;
        case wire::FrameType::obs:
          if (conn.inflight.empty()) {
            sideline(conn, "unexpected obs frame");
            return false;
          }
          conn.cur_obs.push_back(std::move(frame->payload));
          break;
        case wire::FrameType::error: {
          std::string message = "worker error";
          try {
            wire::Reader reader(frame->payload);
            message = reader.str();
          } catch (const wire::ProtocolError&) {
          }
          conn.stats.last_error = message;
          throw ClusterError("cluster: " + conn.stats.address + ": " +
                             message);
        }
        case wire::FrameType::done: {
          std::uint32_t id = 0;
          try {
            id = wire::parse_done(frame->payload);
          } catch (const wire::ProtocolError& e) {
            sideline(conn, std::string("bad done frame: ") + e.what());
            return false;
          }
          if (conn.inflight.empty() || id != conn.inflight.front().id ||
              !conn.have_payload) {
            sideline(conn, "done frame out of order (task " +
                               std::to_string(id) + ")");
            return false;
          }
          complete_head(conn);
          break;
        }
        case wire::FrameType::task:
          sideline(conn, "unexpected task frame from worker");
          return false;
      }
    }
    return true;
  };

  std::uint8_t buffer[1 << 16];
  try {
    for (Conn& conn : conns_) {
      if (conn.healthy && conn.state == Conn::State::closed) {
        start_connect(conn);
      }
    }

    while (completed < shards) {
      for (Conn& conn : conns_) {
        if (conn.readmit_armed && Clock::now() >= conn.readmit_at) {
          conn.readmit_armed = false;
          conn.readmitted_this_run = true;
          conn.probing = true;
          conn.healthy = true;
          start_connect(conn);
        }
      }

      if (startup_fairness) {
        bool pending_conn = false;
        for (const Conn& conn : conns_) {
          if (conn.state == Conn::State::connecting ||
              conn.state == Conn::State::upgrading) {
            pending_conn = true;
            break;
          }
        }
        if (!pending_conn) startup_fairness = false;
      }

      fill_windows();

      std::vector<pollfd> fds;
      std::vector<std::size_t> owner;
      int timeout = 60'000;
      bool readmit_pending = false;
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        Conn& conn = conns_[i];
        if (conn.readmit_armed) {
          readmit_pending = true;
          timeout = std::min(timeout, remaining_ms(conn.readmit_at));
        }
        if (!conn.healthy || conn.state == Conn::State::closed) continue;
        short events = 0;
        switch (conn.state) {
          case Conn::State::connecting:
            events = POLLOUT;
            timeout = std::min(timeout, remaining_ms(conn.conn_deadline));
            break;
          case Conn::State::upgrading:
            events = POLLIN;
            if (conn.upgrade_sent < kShardUpgradeLine.size()) {
              events |= POLLOUT;
            }
            timeout = std::min(timeout, remaining_ms(conn.conn_deadline));
            break;
          case Conn::State::ready:
            if (conn.inflight.empty() && conn.sent >= conn.send_buf.size()) {
              continue;  // idle warm connection: nothing expected
            }
            events = POLLIN;
            if (conn.sent < conn.send_buf.size()) events |= POLLOUT;
            if (!conn.inflight.empty()) {
              timeout = std::min(timeout, remaining_ms(conn.head_deadline));
            }
            break;
          case Conn::State::closed:
            continue;
        }
        fds.push_back(pollfd{conn.fd, events, 0});
        owner.push_back(i);
      }
      if (fds.empty()) {
        if (readmit_pending) {
          // Every worker is sidelined but a re-probe is scheduled: sleep
          // out the shortest backoff instead of giving up.
          if (timeout > 0) ::poll(nullptr, 0, timeout);
          continue;
        }
        throw ClusterError(
            "cluster: no healthy workers remain (" +
            std::to_string(shards - completed) +
            " micro-shards unfinished; last failure: " + last_failure +
            ")");
      }

      const int ready = ::poll(fds.data(), fds.size(), timeout);
      if (ready < 0 && errno != EINTR) {
        throw ClusterError(std::string("cluster: poll failed: ") +
                           std::strerror(errno));
      }

      for (std::size_t i = 0; i < fds.size(); ++i) {
        Conn& conn = conns_[owner[i]];
        if (!conn.healthy || conn.state == Conn::State::closed) continue;
        const short revents = fds[i].revents;

        if (conn.state == Conn::State::connecting) {
          if (revents != 0) {
            int so_error = 0;
            socklen_t len = sizeof so_error;
            if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &so_error,
                             &len) != 0) {
              so_error = errno;
            }
            if (so_error != 0) {
              sideline(conn, std::string("connect failed: ") +
                                 std::strerror(so_error));
            } else {
              enter_upgrade(conn);
            }
          } else if (Clock::now() >= conn.conn_deadline) {
            sideline(conn, "connect timed out");
          }
          continue;
        }

        if (conn.state == Conn::State::upgrading) {
          if ((revents & POLLOUT) != 0 &&
              conn.upgrade_sent < kShardUpgradeLine.size()) {
            const ssize_t n = ::send(
                conn.fd, kShardUpgradeLine.data() + conn.upgrade_sent,
                kShardUpgradeLine.size() - conn.upgrade_sent, MSG_NOSIGNAL);
            if (n < 0) {
              if (errno != EAGAIN && errno != EWOULDBLOCK &&
                  errno != EINTR) {
                sideline(conn, "upgrade send failed");
                continue;
              }
            } else {
              conn.upgrade_sent += static_cast<std::size_t>(n);
            }
          }
          if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            const ssize_t n = ::recv(conn.fd, buffer, sizeof buffer, 0);
            if (n > 0) {
              conn.upgrade_line.append(reinterpret_cast<const char*>(buffer),
                                       static_cast<std::size_t>(n));
              const std::size_t newline = conn.upgrade_line.find('\n');
              if (newline != std::string::npos) {
                finish_upgrade(conn, newline);
              } else if (conn.upgrade_line.size() > 4096) {
                sideline(conn, "oversized upgrade response");
              }
            } else if (n == 0) {
              sideline(conn, "closed during upgrade");
            } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR) {
              sideline(conn, std::string("upgrade read failed: ") +
                                 std::strerror(errno));
            }
          }
          if (conn.state == Conn::State::upgrading &&
              Clock::now() >= conn.conn_deadline) {
            sideline(conn, "upgrade timed out");
          }
          continue;
        }

        // ready: pump pipelined task bytes out, drain reply frames in.
        if ((revents & POLLOUT) != 0 && conn.sent < conn.send_buf.size()) {
          const ssize_t n =
              ::send(conn.fd, conn.send_buf.data() + conn.sent,
                     conn.send_buf.size() - conn.sent, MSG_NOSIGNAL);
          if (n < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
              sideline(conn, std::string("task send failed: ") +
                                 std::strerror(errno));
              continue;
            }
          } else {
            conn.sent += static_cast<std::size_t>(n);
            conn.stats.bytes_out += static_cast<std::uint64_t>(n);
            HMDIV_OBS_COUNT("exec.cluster.bytes_out", n);
            if (conn.sent == conn.send_buf.size()) {
              conn.send_buf.clear();
              conn.sent = 0;
            }
          }
        }

        if ((revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) != 0) {
          const ssize_t n = ::recv(conn.fd, buffer, sizeof buffer, 0);
          if (n < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
              sideline(conn, std::string("reply read failed: ") +
                                 std::strerror(errno));
              continue;
            }
          } else if (n == 0) {
            sideline(conn, "connection closed by worker");
            continue;
          } else {
            conn.stats.bytes_in += static_cast<std::uint64_t>(n);
            HMDIV_OBS_COUNT("exec.cluster.bytes_in", n);
            conn.parser.feed({buffer, static_cast<std::size_t>(n)});
            try {
              if (!process_frames(conn)) continue;
            } catch (const wire::ProtocolError& e) {
              sideline(conn, std::string("protocol error: ") + e.what());
              continue;
            }
          }
        }

        if (!conn.inflight.empty() && Clock::now() >= conn.head_deadline) {
          sideline(conn, "task deadline expired");
        }
      }
    }
  } catch (...) {
    HMDIV_OBS_COUNT("exec.cluster.failures", 1);
    // Mid-task streams cannot be resynced; drop them so a later run
    // starts from a clean connection.
    for (Conn& conn : conns_) {
      if (!conn.inflight.empty()) conn.close_fd();
    }
    detail::set_cluster_worker_stats(worker_stats());
    throw;
  }

  detail::set_cluster_worker_stats(worker_stats());

  // The final partition in ascending span-start order: each completed
  // task recorded its width, so the walk visits every payload exactly
  // once with no overlap.
  std::vector<std::vector<std::uint8_t>> results;
  for (std::uint32_t s = 0; s < shards;) {
    results.push_back(std::move(payloads[s]));
    const std::uint32_t span = payload_span[s] == 0 ? 1 : payload_span[s];
    s += span;
  }
  return results;
}

std::vector<ClusterWorkerStats> cluster_worker_stats() {
  const std::lock_guard<std::mutex> lock(stats_mutex());
  return stats_store();
}

namespace detail {

void set_cluster_worker_stats(std::vector<ClusterWorkerStats> stats) {
  const std::lock_guard<std::mutex> lock(stats_mutex());
  stats_store() = std::move(stats);
}

}  // namespace detail

}  // namespace hmdiv::exec
