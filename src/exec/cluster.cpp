#include "exec/cluster.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

#include "exec/cluster_protocol.hpp"
#include "exec/config.hpp"
#include "exec/shard.hpp"
#include "exec/shard_protocol.hpp"
#include "obs/obs.hpp"

namespace hmdiv::exec {

namespace {

using Clock = std::chrono::steady_clock;

// --- Process-global worker stats (metrics endpoint) -----------------------

std::mutex& stats_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<ClusterWorkerStats>& stats_store() {
  static std::vector<ClusterWorkerStats> store;
  return store;
}

// --- Socket helpers -------------------------------------------------------

int remaining_ms(Clock::time_point deadline) noexcept {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60'000) return 60'000;
  return static_cast<int>(left.count());
}

/// Splits "host:port" / "[v6]:port" into its pieces; false when the shape
/// is wrong (the CLI validates earlier, this is the defensive re-check).
bool split_address(const std::string& address, std::string& host,
                   std::string& port) {
  if (!address.empty() && address.front() == '[') {
    const std::size_t close = address.find(']');
    if (close == std::string::npos || close + 1 >= address.size() ||
        address[close + 1] != ':') {
      return false;
    }
    host = address.substr(1, close - 1);
    port = address.substr(close + 2);
  } else {
    const std::size_t colon = address.rfind(':');
    if (colon == std::string::npos || address.find(':') != colon) {
      return false;
    }
    host = address.substr(0, colon);
    port = address.substr(colon + 1);
  }
  return !host.empty() && !port.empty();
}

/// Non-blocking connect with a poll()ed timeout; returns a connected
/// non-blocking fd (TCP_NODELAY set) or -1 with `error` filled.
int connect_worker(const std::string& host, const std::string& port,
                   std::chrono::milliseconds timeout, std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* list = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &list);
  if (rc != 0) {
    error = std::string("resolve failed: ") + ::gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  int last_errno = ECONNREFUSED;
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family,
                  ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    if (errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(timeout.count()));
      int so_error = ETIMEDOUT;
      if (ready == 1) {
        socklen_t len = sizeof so_error;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
          so_error = errno;
        }
      }
      if (so_error == 0) break;
      last_errno = so_error;
    } else {
      last_errno = errno;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(list);
  if (fd < 0) {
    error = std::string("connect failed: ") + std::strerror(last_errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

/// Sends all of `bytes` on a non-blocking fd, polling under `deadline`.
bool send_within(int fd, std::string_view bytes,
                 Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      return false;
    }
    const int left = remaining_ms(deadline);
    if (left <= 0) return false;
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, left) < 0 && errno != EINTR) return false;
  }
  return true;
}

}  // namespace

// --- Per-worker connection state ------------------------------------------

struct ClusterRunner::Conn {
  std::string host;
  std::string port;
  int fd = -1;
  bool healthy = true;  ///< this run; reset at run start
  bool busy = false;
  std::uint32_t shard = 0;
  std::vector<std::uint8_t> send_buf;
  std::size_t sent = 0;
  wire::FrameParser parser;
  std::vector<wire::Frame> frames;
  Clock::time_point started{};
  Clock::time_point deadline{};
  ClusterWorkerStats stats;

  void close_fd() {
    if (fd >= 0) ::close(fd);
    fd = -1;
    busy = false;
    parser = wire::FrameParser{};
    frames.clear();
  }
};

ClusterRunner::ClusterRunner(ClusterOptions options)
    : options_(std::move(options)) {
  conns_.reserve(options_.workers.size());
  for (const std::string& address : options_.workers) {
    Conn conn;
    conn.stats.address = address;
    if (!split_address(address, conn.host, conn.port)) {
      conn.healthy = false;
      conn.stats.last_error = "malformed worker address";
    }
    conns_.push_back(std::move(conn));
  }
}

ClusterRunner::~ClusterRunner() {
  for (Conn& conn : conns_) conn.close_fd();
}

unsigned ClusterRunner::resolved_shards() const noexcept {
  unsigned shards = options_.shards;
  if (shards == 0) {
    const unsigned configured = default_shard_count();
    shards = configured > 1 ? configured
                            : static_cast<unsigned>(conns_.size());
  }
  if (shards == 0) shards = 1;
  return shards > kMaxShards ? kMaxShards : shards;
}

std::vector<ClusterWorkerStats> ClusterRunner::worker_stats() const {
  std::vector<ClusterWorkerStats> out;
  out.reserve(conns_.size());
  for (const Conn& conn : conns_) out.push_back(conn.stats);
  return out;
}

std::vector<std::vector<std::uint8_t>> ClusterRunner::run(
    std::string_view workload, std::span<const std::uint8_t> blob) {
  if (conns_.empty()) {
    throw ClusterError("cluster: no workers configured");
  }
  const unsigned shards = resolved_shards();
  HMDIV_OBS_SCOPED_TIMER("exec.cluster.run_ns");
  HMDIV_OBS_COUNT("exec.cluster.runs", 1);
  const bool ship_obs = obs::enabled();
  const unsigned threads =
      options_.threads ? options_.threads : default_config().threads;

  std::vector<std::vector<std::uint8_t>> results(shards);
  std::vector<bool> done(shards, false);
  std::vector<std::size_t> last_conn(shards, conns_.size());
  std::deque<std::uint32_t> pending;
  for (std::uint32_t s = 0; s < shards; ++s) pending.push_back(s);
  std::size_t completed = 0;
  std::string last_failure = "no worker reachable";

  // Health is per-run (a worker that failed last run gets a fresh connect
  // attempt); warm fds and cumulative stats persist across runs.
  for (Conn& conn : conns_) {
    conn.healthy = !conn.host.empty();
  }

  const auto build_task = [&](std::uint32_t s) {
    wire::ShardTask task;
    task.workload = std::string(workload);
    task.shard_index = s;
    task.shard_count = shards;
    task.threads = threads;
    task.obs_enabled = ship_obs;
    task.blob.assign(blob.begin(), blob.end());
    std::vector<std::uint8_t> out;
    wire::append_frame(out, wire::FrameType::task,
                       wire::serialize_task(task));
    return out;
  };

  // Connect + NDJSON upgrade handshake (blocking, bounded): one request
  // line out, one `"ok":true` response line back; bytes after the newline
  // already belong to the frame stream.
  const auto open_conn = [&](Conn& conn) -> bool {
    std::string error;
    conn.fd = connect_worker(conn.host, conn.port, options_.connect_timeout,
                             error);
    if (conn.fd < 0) {
      conn.healthy = false;
      conn.stats.last_error = error;
      last_failure = conn.stats.address + ": " + error;
      return false;
    }
    const auto handshake_deadline = Clock::now() + options_.connect_timeout;
    const auto fail = [&](const std::string& why) {
      conn.close_fd();
      conn.healthy = false;
      conn.stats.last_error = why;
      last_failure = conn.stats.address + ": " + why;
      return false;
    };
    if (!send_within(conn.fd, kShardUpgradeLine, handshake_deadline)) {
      return fail("upgrade send failed");
    }
    std::string line;
    char buffer[512];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buffer, sizeof buffer, 0);
      if (n > 0) {
        line.append(buffer, static_cast<std::size_t>(n));
        const std::size_t newline = line.find('\n');
        if (newline != std::string::npos) {
          if (line.find("\"ok\":true") == std::string::npos ||
              line.find("\"ok\":true") > newline) {
            return fail("upgrade rejected: " + line.substr(0, newline));
          }
          // Trailing bytes are already frames (none with a well-behaved
          // worker, but the parser owns them either way).
          const std::size_t extra = line.size() - newline - 1;
          if (extra > 0) {
            conn.parser.feed(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(line.data()) +
                    newline + 1,
                extra));
          }
          return true;
        }
        if (line.size() > 4096) return fail("oversized upgrade response");
        continue;
      }
      if (n == 0) return fail("closed during upgrade");
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        return fail(std::string("upgrade read failed: ") +
                    std::strerror(errno));
      }
      const int left = remaining_ms(handshake_deadline);
      if (left <= 0) return fail("upgrade timed out");
      pollfd pfd{conn.fd, POLLIN, 0};
      if (::poll(&pfd, 1, left) < 0 && errno != EINTR) {
        return fail("upgrade poll failed");
      }
    }
  };

  // Drops a worker mid-task: the frame stream cannot be resynced, so the
  // connection closes, the worker sits out the rest of the run, and the
  // task goes back to the front of the queue for a healthy worker.
  const auto fail_task = [&](Conn& conn, const std::string& why) {
    conn.stats.retries += 1;
    conn.stats.last_error = why;
    last_failure = conn.stats.address + ": " + why;
    HMDIV_OBS_COUNT("exec.cluster.retries", 1);
    if (conn.busy) pending.push_front(conn.shard);
    conn.close_fd();
    conn.healthy = false;
  };

  const auto dispatch_to = [&](std::size_t index) {
    Conn& conn = conns_[index];
    if (conn.busy || !conn.healthy || pending.empty()) return;
    if (conn.fd < 0 && !open_conn(conn)) return;
    const std::uint32_t s = pending.front();
    pending.pop_front();
    if (last_conn[s] < conns_.size() && last_conn[s] != index) {
      HMDIV_OBS_COUNT("exec.cluster.reassigned", 1);
    }
    last_conn[s] = index;
    conn.busy = true;
    conn.shard = s;
    conn.send_buf = build_task(s);
    conn.sent = 0;
    conn.frames.clear();
    conn.started = Clock::now();
    conn.deadline = conn.started + options_.task_deadline;
  };

  const auto complete_task = [&](Conn& conn) {
    std::vector<std::uint8_t> payload;
    for (wire::Frame& frame : conn.frames) {
      if (frame.type == wire::FrameType::result) {
        payload = std::move(frame.payload);
      } else if (frame.type == wire::FrameType::obs) {
        try {
          obs::Registry::global().merge(
              obs::parse_snapshot(frame.payload));
        } catch (const std::exception& e) {
          throw ClusterError("cluster: " + conn.stats.address +
                             ": bad obs frame: " + e.what());
        }
      }
    }
    conn.frames.clear();
    results[conn.shard] = std::move(payload);
    done[conn.shard] = true;
    completed += 1;
    conn.busy = false;
    conn.stats.tasks += 1;
    HMDIV_OBS_COUNT("exec.cluster.tasks", 1);
    if (obs::enabled()) {
      obs::Registry::global()
          .histogram("exec.cluster.rpc_ns")
          .record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - conn.started)
                  .count()));
    }
  };

  std::uint8_t buffer[1 << 16];
  try {
    while (completed < shards) {
      for (std::size_t i = 0; i < conns_.size(); ++i) dispatch_to(i);

      std::vector<pollfd> fds;
      std::vector<std::size_t> owner;
      int timeout = 60'000;
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        Conn& conn = conns_[i];
        if (!conn.busy) continue;
        short events = POLLIN;
        if (conn.sent < conn.send_buf.size()) events |= POLLOUT;
        fds.push_back(pollfd{conn.fd, events, 0});
        owner.push_back(i);
        timeout = std::min(timeout, remaining_ms(conn.deadline));
      }
      if (fds.empty()) {
        throw ClusterError(
            "cluster: no healthy workers remain (" +
            std::to_string(shards - completed) +
            " shards unfinished; last failure: " + last_failure + ")");
      }

      const int ready = ::poll(fds.data(), fds.size(), timeout);
      if (ready < 0 && errno != EINTR) {
        throw ClusterError(std::string("cluster: poll failed: ") +
                           std::strerror(errno));
      }

      for (std::size_t i = 0; i < fds.size(); ++i) {
        Conn& conn = conns_[owner[i]];
        if (!conn.busy) continue;
        const short revents = fds[i].revents;

        if ((revents & POLLOUT) != 0 &&
            conn.sent < conn.send_buf.size()) {
          const ssize_t n =
              ::send(conn.fd, conn.send_buf.data() + conn.sent,
                     conn.send_buf.size() - conn.sent, MSG_NOSIGNAL);
          if (n < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                errno != EINTR) {
              fail_task(conn, std::string("task send failed: ") +
                                  std::strerror(errno));
              continue;
            }
          } else {
            conn.sent += static_cast<std::size_t>(n);
            conn.stats.bytes_out += static_cast<std::uint64_t>(n);
            HMDIV_OBS_COUNT("exec.cluster.bytes_out", n);
          }
        }

        if ((revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) != 0) {
          const ssize_t n = ::recv(conn.fd, buffer, sizeof buffer, 0);
          if (n < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                errno != EINTR) {
              fail_task(conn, std::string("reply read failed: ") +
                                  std::strerror(errno));
              continue;
            }
          } else if (n == 0) {
            fail_task(conn, "connection closed by worker");
            continue;
          } else {
            conn.stats.bytes_in += static_cast<std::uint64_t>(n);
            HMDIV_OBS_COUNT("exec.cluster.bytes_in", n);
            try {
              conn.parser.feed({buffer, static_cast<std::size_t>(n)});
              while (auto frame = conn.parser.next()) {
                conn.frames.push_back(std::move(*frame));
              }
            } catch (const wire::ProtocolError& e) {
              fail_task(conn, std::string("protocol error: ") + e.what());
              continue;
            }
            bool have_result = false;
            for (const wire::Frame& frame : conn.frames) {
              if (frame.type == wire::FrameType::error) {
                // A structured error is deterministic — every worker
                // would fail the same way, so reassignment cannot help.
                std::string message = "worker error";
                try {
                  wire::Reader reader(frame.payload);
                  message = reader.str();
                } catch (const wire::ProtocolError&) {
                }
                conn.stats.last_error = message;
                throw ClusterError("cluster: " + conn.stats.address +
                                   ": " + message);
              }
              have_result =
                  have_result || frame.type == wire::FrameType::result;
            }
            const bool have_obs =
                !ship_obs ||
                [&] {
                  for (const wire::Frame& frame : conn.frames) {
                    if (frame.type == wire::FrameType::obs) return true;
                  }
                  return false;
                }();
            if (have_result && have_obs) {
              complete_task(conn);
              continue;
            }
          }
        }

        if (conn.busy && Clock::now() >= conn.deadline) {
          fail_task(conn, "task deadline expired");
        }
      }
    }
  } catch (...) {
    HMDIV_OBS_COUNT("exec.cluster.failures", 1);
    // Mid-task streams cannot be resynced; drop them so a later run
    // starts from a clean connection.
    for (Conn& conn : conns_) {
      if (conn.busy) conn.close_fd();
    }
    detail::set_cluster_worker_stats(worker_stats());
    throw;
  }

  detail::set_cluster_worker_stats(worker_stats());
  return results;
}

std::vector<ClusterWorkerStats> cluster_worker_stats() {
  const std::lock_guard<std::mutex> lock(stats_mutex());
  return stats_store();
}

namespace detail {

void set_cluster_worker_stats(std::vector<ClusterWorkerStats> stats) {
  const std::lock_guard<std::mutex> lock(stats_mutex());
  stats_store() = std::move(stats);
}

}  // namespace detail

}  // namespace hmdiv::exec
