// Wire layer of the TCP shard transport (DESIGN.md §15).
//
// A cluster coordinator talks to `hmdiv_serve` workers over the daemon's
// ordinary NDJSON connection: it sends one `{"op":"shard",...}` request
// (the upgrade handshake), waits for the `"ok":true` response line, and
// from then on the connection carries the same length-prefixed "HMDF"
// frames the pipe transport of shard_protocol.hpp uses — task frames in,
// result (+ obs) or error frames out, several tasks per connection. The
// frame format, the wire::shard_range partition, and the ascending-shard
// merge are all shared with the single-host engine, which is what makes
// 1-host-N-shards and N-hosts bit-identical by construction.
//
// This header holds the pieces both ends share: the upgrade request line
// the coordinator sends, and the worker-side ShardSession — a byte-in /
// byte-out state machine the serve layer drives from its connection loop
// (no sockets in here, so the protocol is unit-testable in-process).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "exec/shard_protocol.hpp"

namespace hmdiv::exec {

/// The NDJSON request a coordinator sends to switch a serve connection
/// into binary shard mode. The daemon answers with a normal response line
/// (`"ok":true` and `"shard":"ready"`); every byte after that response is
/// HMDF frames.
inline constexpr std::string_view kShardUpgradeLine =
    "{\"op\":\"shard\",\"id\":0}\n";

/// Executes one shard task on this process's engine and appends the reply
/// frames to `out`: a result frame, then — iff task.obs_enabled — an obs
/// frame carrying the *delta* of the global registry across the handler
/// (obs::snapshot_delta; a long-running daemon must not re-ship its whole
/// uptime per task). A failed or unknown workload appends an error frame
/// instead and returns false (the caller must not follow an error with a
/// done frame — done marks successful completion only). Applies
/// task.threads to the process default config exactly as the pipe worker
/// does (a perf-only knob: results are bit-identical at any thread
/// count). Never throws.
bool execute_shard_task(const wire::ShardTask& task,
                        std::vector<std::uint8_t>& out);

/// Worker-side shard-mode stream: feed it connection bytes, ship back the
/// replies it produces. One session per upgraded connection. Coordinators
/// may pipeline several task frames back to back; each task's reply ends
/// with a done frame carrying the task's id (span-start shard index), so
/// the far end can match replies to its in-flight window FIFO. The session
/// also caches the most recent inline blob per connection: a task with
/// blob_cached set reuses it, so a coordinator ships a large workload
/// config once per connection, not once per micro-task.
class ShardSession {
 public:
  struct Reply {
    /// Span-start shard index of the task (faults key on it).
    std::uint32_t shard_index = 0;
    /// Frames to ship, in order (result [+ obs] + done, or error).
    std::vector<std::uint8_t> bytes;
    /// Unrecoverable stream (bad magic, oversized or non-task frame):
    /// ship `bytes`, then close the connection.
    bool close = false;
  };

  /// Consumes `bytes`, executes every complete task frame in arrival
  /// order, and returns one Reply per task. A malformed stream yields a
  /// final Reply with close=true and the session goes dead (further
  /// bytes are ignored). Never throws.
  [[nodiscard]] std::vector<Reply> consume(
      std::span<const std::uint8_t> bytes);

 private:
  wire::FrameParser parser_;
  bool dead_ = false;
  /// Blob cache for blob_cached tasks (one per connection).
  bool have_blob_ = false;
  std::string blob_workload_;
  std::vector<std::uint8_t> blob_;
};

}  // namespace hmdiv::exec
