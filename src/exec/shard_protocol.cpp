#include "exec/shard_protocol.hpp"

#include <algorithm>

namespace hmdiv::exec::wire {

namespace {

constexpr std::size_t kHeaderSize = 4 + 4 + 8;  // magic + type + length

bool known_type(std::uint32_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::task:
    case FrameType::result:
    case FrameType::obs:
    case FrameType::error:
    case FrameType::done:
      return true;
  }
  return false;
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload) {
  Writer header;
  header.u32(kFrameMagic);
  header.u32(static_cast<std::uint32_t>(type));
  header.u64(payload.size());
  out.insert(out.end(), header.data().begin(), header.data().end());
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameParser::next() {
  if (buffer_.size() < kHeaderSize) return std::nullopt;
  Reader header(std::span<const std::uint8_t>(buffer_.data(), kHeaderSize));
  if (header.u32() != kFrameMagic) {
    throw ProtocolError("shard frame: bad magic");
  }
  const std::uint32_t type = header.u32();
  if (!known_type(type)) {
    throw ProtocolError("shard frame: unknown frame type " +
                        std::to_string(type));
  }
  const std::uint64_t length = header.u64();
  if (length > kMaxFramePayload) {
    throw ProtocolError("shard frame: declared payload of " +
                        std::to_string(length) + " bytes exceeds limit");
  }
  if (buffer_.size() - kHeaderSize < length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(
      buffer_.begin() + static_cast<std::ptrdiff_t>(kHeaderSize),
      buffer_.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + length));
  buffer_.erase(
      buffer_.begin(),
      buffer_.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + length));
  return frame;
}

std::vector<std::uint8_t> serialize_task(const ShardTask& task) {
  Writer w;
  w.str(task.workload);
  w.u32(task.shard_index);
  w.u32(task.shard_count);
  w.u32(task.span);
  w.u32(task.threads);
  w.u8(task.obs_enabled ? 1 : 0);
  w.u8(task.blob_cached ? 1 : 0);
  w.u64(task.blob.size());
  w.bytes(task.blob);
  return w.take();
}

ShardTask parse_task(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ShardTask task;
  task.workload = r.str();
  task.shard_index = r.u32();
  task.shard_count = r.u32();
  task.span = r.u32();
  task.threads = r.u32();
  task.obs_enabled = r.u8() != 0;
  task.blob_cached = r.u8() != 0;
  const std::uint64_t blob_size = r.u64();
  const auto blob = r.take(blob_size);
  task.blob.assign(blob.begin(), blob.end());
  if (!r.exhausted()) {
    throw ProtocolError("shard task: trailing bytes after blob");
  }
  if (task.shard_count == 0 || task.shard_index >= task.shard_count) {
    throw ProtocolError("shard task: shard_index outside [0, shard_count)");
  }
  if (task.span == 0 ||
      std::uint64_t{task.shard_index} + task.span > task.shard_count) {
    throw ProtocolError("shard task: span outside [1, shard_count - index]");
  }
  if (task.blob_cached && !task.blob.empty()) {
    throw ProtocolError("shard task: cached task carries an inline blob");
  }
  return task;
}

std::vector<std::uint8_t> serialize_done(std::uint32_t task_id) {
  Writer w;
  w.u32(task_id);
  return w.take();
}

std::uint32_t parse_done(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const std::uint32_t id = r.u32();
  if (!r.exhausted()) {
    throw ProtocolError("shard done frame: trailing bytes");
  }
  return id;
}

ShardRange shard_range(std::uint64_t items, std::uint32_t shard,
                       std::uint32_t shards) noexcept {
  const std::uint32_t n = std::max(shards, 1u);
  const std::uint32_t s = std::min(shard, n - 1);
  // floor(k·m/N) without the 128-bit product: with m = q·N + r the cut is
  // k·q + floor(k·r/N); k·q ≤ m and k·r ≤ kMaxShards² so nothing overflows.
  const std::uint64_t q = items / n;
  const std::uint64_t r = items % n;
  const auto cut = [&](std::uint64_t k) { return k * q + (k * r) / n; };
  return ShardRange{cut(s), cut(s + 1)};
}

ShardRange task_range(std::uint64_t items, const ShardTask& task) noexcept {
  // Cuts nest: shard_range(items, s, N).end == shard_range(items, s+1,
  // N).begin, so the span's union is one contiguous range.
  const std::uint32_t span = std::max(task.span, 1u);
  return ShardRange{
      shard_range(items, task.shard_index, task.shard_count).begin,
      shard_range(items, task.shard_index + span - 1, task.shard_count).end};
}

}  // namespace hmdiv::exec::wire
