#include "exec/cluster_protocol.hpp"

#include <string>
#include <utility>

#include "exec/config.hpp"
#include "exec/shard.hpp"
#include "obs/obs.hpp"

namespace hmdiv::exec {

namespace {

void append_error_frame(std::vector<std::uint8_t>& out,
                        const std::string& message) {
  wire::Writer payload;
  payload.str(message);
  wire::append_frame(out, wire::FrameType::error, payload.data());
}

}  // namespace

bool execute_shard_task(const wire::ShardTask& task,
                        std::vector<std::uint8_t>& out) {
  const ShardHandler handler = find_shard_workload(task.workload);
  if (handler == nullptr) {
    append_error_frame(out, "shard endpoint: unknown workload '" +
                                task.workload + "'");
    return false;
  }
  // Same process-global knobs the pipe worker applies. The thread budget
  // is perf-only (results are bit-identical at any count), so flipping it
  // per task is safe even with concurrent coordinator connections.
  set_default_config(Config{task.threads});
  const bool was_enabled = obs::enabled();
  if (task.obs_enabled && !was_enabled) obs::set_enabled(true);
  obs::Snapshot before;
  if (task.obs_enabled) before = obs::registry_snapshot();

  std::vector<std::uint8_t> payload;
  try {
    HMDIV_OBS_COUNT("serve.shard.tasks", 1);
    HMDIV_OBS_SCOPED_TIMER("serve.shard.task_ns");
    payload = handler(task);
  } catch (const std::exception& e) {
    if (task.obs_enabled && !was_enabled) obs::set_enabled(false);
    append_error_frame(out, "shard endpoint: " + task.workload + ": " +
                                e.what());
    return false;
  }

  wire::append_frame(out, wire::FrameType::result, payload);
  if (task.obs_enabled) {
    const obs::Snapshot delta =
        obs::snapshot_delta(before, obs::registry_snapshot());
    wire::append_frame(out, wire::FrameType::obs,
                       obs::serialize_snapshot(delta));
    if (!was_enabled) obs::set_enabled(false);
  }
  return true;
}

std::vector<ShardSession::Reply> ShardSession::consume(
    std::span<const std::uint8_t> bytes) {
  std::vector<Reply> replies;
  if (dead_) return replies;
  const auto die = [&](const std::string& message) {
    dead_ = true;
    Reply reply;
    reply.close = true;
    append_error_frame(reply.bytes, message);
    replies.push_back(std::move(reply));
  };
  try {
    parser_.feed(bytes);
    while (auto frame = parser_.next()) {
      if (frame->type != wire::FrameType::task) {
        die("shard endpoint: expected a task frame");
        break;
      }
      wire::ShardTask task;
      try {
        task = wire::parse_task(frame->payload);
      } catch (const std::exception& e) {
        die(std::string("shard endpoint: bad task: ") + e.what());
        break;
      }
      Reply reply;
      reply.shard_index = task.shard_index;
      if (task.blob_cached) {
        if (!have_blob_ || blob_workload_ != task.workload) {
          // A correct coordinator ships the blob inline on the first task
          // of every (re)connection; a miss is a protocol bug on its side,
          // reported as a structured (deterministic) error.
          append_error_frame(reply.bytes,
                             "shard endpoint: no cached blob for workload '" +
                                 task.workload + "'");
          replies.push_back(std::move(reply));
          continue;
        }
        task.blob = blob_;
      } else {
        blob_ = task.blob;
        blob_workload_ = task.workload;
        have_blob_ = true;
      }
      if (execute_shard_task(task, reply.bytes)) {
        wire::append_frame(reply.bytes, wire::FrameType::done,
                           wire::serialize_done(task.shard_index));
      }
      replies.push_back(std::move(reply));
    }
  } catch (const wire::ProtocolError& e) {
    die(std::string("shard endpoint: ") + e.what());
  }
  return replies;
}

}  // namespace hmdiv::exec
