#include "exec/thread_pool.hpp"

#include <algorithm>

namespace hmdiv::exec {

namespace {

thread_local bool tl_on_worker_thread = false;

}  // namespace

ThreadPool::ThreadPool(unsigned helpers) {
  workers_.reserve(helpers);
  for (unsigned i = 0; i < helpers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() noexcept { return tl_on_worker_thread; }

ThreadPool& ThreadPool::global() {
  // Floor of 3 helpers so that multi-thread code paths (and TSan runs) are
  // genuinely concurrent even on small machines; idle helpers cost nothing,
  // and the per-job thread budget still caps actual parallelism.
  static ThreadPool pool(
      std::max(4U, std::thread::hardware_concurrency()) - 1U);
  return pool;
}

void ThreadPool::execute(Job& job) {
  for (;;) {
    if (job.failed.load(std::memory_order_relaxed)) return;
    const std::size_t index =
        job.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= job.count) return;
    try {
      (*job.fn)(index);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
      job.failed.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock,
                     [this] { return stopping_ || job_slots_ > 0; });
    if (stopping_) return;
    Job& job = *job_;
    --job_slots_;
    ++job.active_helpers;
    lock.unlock();

    tl_on_worker_thread = true;
    execute(job);
    tl_on_worker_thread = false;

    lock.lock();
    if (--job.active_helpers == 0) job_done_.notify_all();
  }
}

void ThreadPool::run_indexed(std::size_t count, unsigned max_threads,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const unsigned budget = std::min<unsigned>(
      {max_threads == 0 ? 1U : max_threads, helper_count() + 1U,
       static_cast<unsigned>(std::min<std::size_t>(count, ~0U))});

  auto run_inline = [&] {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  };

  // Serial budget, re-entrant call, or pool busy with another job: inline.
  if (budget <= 1 || tl_on_worker_thread) {
    run_inline();
    return;
  }
  std::unique_lock<std::mutex> submit(submit_mutex_, std::try_to_lock);
  if (!submit.owns_lock()) {
    run_inline();
    return;
  }

  Job job;
  job.fn = &fn;
  job.count = count;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    job_slots_ = budget - 1;
  }
  work_ready_.notify_all();

  execute(job);  // The caller is one of the job's threads.

  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_slots_ = 0;  // Stop late helpers from joining a finished job.
    job_ = nullptr;
    job_done_.wait(lock, [&job] { return job.active_helpers == 0; });
  }
  if (job.failed.load(std::memory_order_relaxed)) {
    std::rethrow_exception(job.error);
  }
}

}  // namespace hmdiv::exec
