#include "exec/thread_pool.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace hmdiv::exec {

namespace {

thread_local bool tl_on_worker_thread = false;

#if HMDIV_OBS
/// Nanoseconds between two steady_clock points, clamped to >= 0.
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count();
  return ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
}
#endif

}  // namespace

ThreadPool::ThreadPool(unsigned helpers) {
  workers_.reserve(helpers);
  for (unsigned i = 0; i < helpers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() noexcept { return tl_on_worker_thread; }

ThreadPool& ThreadPool::global() {
  // Floor of 3 helpers so that multi-thread code paths (and TSan runs) are
  // genuinely concurrent even on small machines; idle helpers cost nothing,
  // and the per-job thread budget still caps actual parallelism.
  static ThreadPool pool(
      std::max(4U, std::thread::hardware_concurrency()) - 1U);
  return pool;
}

void ThreadPool::execute(Job& job) {
  for (;;) {
    if (job.failed.load(std::memory_order_relaxed)) return;
    const std::size_t index =
        job.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= job.count) return;
    HMDIV_OBS_COUNT("exec.pool.tasks", 1);
    try {
      job.fn(index);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
      job.failed.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock,
                     [this] { return stopping_ || job_slots_ > 0; });
    if (stopping_) return;
    Job& job = *job_;
    --job_slots_;
    ++job.active_helpers;
    lock.unlock();

#if HMDIV_OBS
    const bool timed = job.timed && obs::enabled();
    std::chrono::steady_clock::time_point picked_up;
    if (timed) {
      picked_up = std::chrono::steady_clock::now();
      static obs::Histogram& queue_wait =
          obs::Registry::global().histogram("exec.pool.queue_wait_ns");
      queue_wait.record(elapsed_ns(job.submitted, picked_up));
    }
#endif
    tl_on_worker_thread = true;
    execute(job);
    tl_on_worker_thread = false;
#if HMDIV_OBS
    if (timed) {
      static obs::Histogram& busy =
          obs::Registry::global().histogram("exec.pool.helper_busy_ns");
      busy.record(elapsed_ns(picked_up, std::chrono::steady_clock::now()));
    }
#endif

    lock.lock();
    if (--job.active_helpers == 0) job_done_.notify_all();
  }
}

void ThreadPool::run_indexed(std::size_t count, unsigned max_threads,
                             FunctionRef<void(std::size_t)> fn) {
  if (count == 0) return;
  const unsigned budget = std::min<unsigned>(
      {max_threads == 0 ? 1U : max_threads, helper_count() + 1U,
       static_cast<unsigned>(std::min<std::size_t>(count, ~0U))});

  auto run_inline = [&] {
    HMDIV_OBS_COUNT("exec.pool.inline_jobs", 1);
    HMDIV_OBS_COUNT("exec.pool.tasks", count);
    for (std::size_t i = 0; i < count; ++i) fn(i);
  };

  // Serial budget, re-entrant call, or pool busy with another job: inline.
  if (budget <= 1 || tl_on_worker_thread) {
    run_inline();
    return;
  }
  std::unique_lock<std::mutex> submit(submit_mutex_, std::try_to_lock);
  if (!submit.owns_lock()) {
    run_inline();
    return;
  }

  HMDIV_OBS_COUNT("exec.pool.jobs", 1);
  Job job(fn);
  job.count = count;
#if HMDIV_OBS
  if (obs::enabled()) {
    job.timed = true;
    job.submitted = std::chrono::steady_clock::now();
  }
#endif
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    job_slots_ = budget - 1;
  }
  work_ready_.notify_all();

#if HMDIV_OBS
  if (job.timed) {
    static obs::Histogram& caller_busy =
        obs::Registry::global().histogram("exec.pool.caller_busy_ns");
    const auto started = std::chrono::steady_clock::now();
    execute(job);  // The caller is one of the job's threads.
    caller_busy.record(
        elapsed_ns(started, std::chrono::steady_clock::now()));
  } else {
    execute(job);
  }
#else
  execute(job);  // The caller is one of the job's threads.
#endif

  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_slots_ = 0;  // Stop late helpers from joining a finished job.
    job_ = nullptr;
    job_done_.wait(lock, [&job] { return job.active_helpers == 0; });
  }
  if (job.failed.load(std::memory_order_relaxed)) {
    std::rethrow_exception(job.error);
  }
}

}  // namespace hmdiv::exec
