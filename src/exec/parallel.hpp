// Deterministic chunked parallel algorithms.
//
// The determinism contract: the chunk decomposition of [0, n) depends only
// on `n` and the call-site `grain` — never on the thread count — and
// reductions combine per-chunk results in ascending chunk order. A caller
// that (a) makes each chunk's work self-contained (its own RNG substream,
// its own scratch buffers) and (b) writes results into per-index slots
// therefore gets bit-identical output at 1, 4 or N threads. Thread count
// only changes wall-clock time.
//
//   exec::parallel_for_chunks(n, grain, [&](begin, end, chunk) { … });
//   exec::parallel_for(n, grain, [&](i) { … });
//   sum = exec::parallel_reduce(n, grain, 0.0, map_chunk, std::plus<>());
//
// `grain` is the chunk size: pick it so one chunk amortises scheduling
// (microseconds of work at least) but n/grain still exceeds the largest
// thread count you care about.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "exec/config.hpp"
#include "exec/function_ref.hpp"
#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"

namespace hmdiv::exec {

/// Number of fixed-size chunks covering [0, n) at the given grain.
[[nodiscard]] constexpr std::size_t chunk_count(std::size_t n,
                                                std::size_t grain) noexcept {
  const std::size_t g = grain == 0 ? 1 : grain;
  return (n + g - 1) / g;
}

/// Runs body(begin, end, chunk_index) over fixed chunks of [0, n).
/// Chunk layout is independent of `config`; exceptions from `body`
/// propagate to the caller.
template <typename Body>
void parallel_for_chunks(std::size_t n, std::size_t grain, Body&& body,
                         const Config& config = default_config()) {
  if (n == 0) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = chunk_count(n, g);
  // Region-level tallies (one enabled() check per region, never per
  // index): chunks counts the decomposition, serial_regions the regions
  // that bypassed the pool entirely.
  HMDIV_OBS_COUNT("exec.parallel.regions", 1);
  HMDIV_OBS_COUNT("exec.parallel.chunks", chunks);
  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t begin = chunk * g;
    const std::size_t end = std::min(n, begin + g);
    body(begin, end, chunk);
  };
  if (chunks == 1 || config.resolved_threads() <= 1) {
    HMDIV_OBS_COUNT("exec.parallel.serial_regions", 1);
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
    return;
  }
  // FunctionRef borrows run_chunk; run_indexed blocks until the job is
  // done, so the stack lambda outlives every invocation. No allocation.
  ThreadPool::global().run_indexed(chunks, config.resolved_threads(),
                                   FunctionRef<void(std::size_t)>(run_chunk));
}

/// Element-wise parallel loop: body(i) for i in [0, n).
template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, Body&& body,
                  const Config& config = default_config()) {
  parallel_for_chunks(
      n, grain,
      [&body](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      config);
}

/// Deterministic ordered reduction. `map_chunk(begin, end, chunk)` maps a
/// chunk to a T; `combine(accumulated, next)` folds the per-chunk values
/// in ascending chunk order, starting from `identity`. Because the fold
/// order is fixed by the chunk layout, even non-associative combines
/// (floating-point sums, leftmost-min) give the same result at any thread
/// count.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t n, std::size_t grain, T identity,
                                MapFn&& map_chunk, CombineFn&& combine,
                                const Config& config = default_config()) {
  if (n == 0) return identity;
  const std::size_t chunks = chunk_count(n, grain);
  std::vector<T> partial(chunks, identity);
  parallel_for_chunks(
      n, grain,
      [&partial, &map_chunk](std::size_t begin, std::size_t end,
                             std::size_t chunk) {
        partial[chunk] = map_chunk(begin, end, chunk);
      },
      config);
  T out = std::move(identity);
  for (T& value : partial) out = combine(std::move(out), std::move(value));
  return out;
}

}  // namespace hmdiv::exec
