// Multi-process sharded execution: fork/exec worker fan-out with a
// deterministic merge.
//
// The thread pool (exec/parallel.hpp) stops at one process; the shard
// engine is the next rung. A parent `ShardRunner` spawns N worker
// processes — fork + exec of the *same binary* with the hidden
// `--shard-worker` entry point — and hands each a shard descriptor
// (workload name, shard index/count, thread budget, config blob) over a
// pipe using the length-prefixed frame protocol of shard_protocol.hpp.
// Workers rebuild the workload from the blob, run their slice on the
// ordinary in-process engine (batched kernels × thread pool), and ship the
// result plus their obs::Registry snapshot back over a second pipe.
//
// Determinism contract — the same guarantee the thread pool gives at 1 vs
// N threads, lifted to processes: the work partition depends only on the
// problem size and the shard count (wire::shard_range over the workload's
// *substream* index space — trial batches, grid indices, draw chunks), every
// slice draws from the same Rng(seed, stream) substreams it would occupy
// in a single-process run, doubles cross the pipe as bit patterns, and the
// parent merges per-shard results in ascending shard order. N-shard output
// is therefore bit-identical to the 1-shard and to the in-process run.
//
// Failure handling: the parent multiplexes all pipes through poll() under
// a deadline and reaps every child via waitpid on every path. A worker
// that dies (non-zero exit, signal, SIGKILL), writes a truncated frame, or
// stalls past the deadline surfaces as a structured ShardError naming the
// shard and the failure kind — never a hang, never a zombie.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "exec/shard_protocol.hpp"

namespace hmdiv::exec {

/// Process-level fan-out policy for one sharded run.
struct ShardOptions {
  /// Worker processes to spawn; 0 means default_shard_count() (the
  /// HMDIV_SHARDS environment default, itself defaulting to 1).
  unsigned shards = 0;
  /// Thread budget *per worker* (the processes × threads composition);
  /// 0 means each worker uses all hardware threads.
  unsigned threads = 0;
  /// Wall-clock budget for the whole fan-out (spawn, task hand-off,
  /// result collection, reaping). On expiry the remaining workers are
  /// SIGKILLed, reaped, and a structured timeout error is raised.
  std::chrono::milliseconds deadline{120'000};
  /// Worker binary; empty means the running binary (/proc/self/exe).
  std::string exe;
};

/// Hard ceiling on worker processes (mirrors the --shards CLI range).
inline constexpr unsigned kMaxShards = 256;

/// What went wrong with one shard, in machine-readable form.
struct ShardFailure {
  enum class Kind {
    none,        ///< no failure
    spawn,       ///< pipe/fork/exec failed (code = errno)
    write,       ///< task hand-off failed, e.g. worker died reading (errno)
    timeout,     ///< deadline expired before the worker finished
    signal,      ///< worker killed by signal (code = signal number)
    exit_code,   ///< worker exited non-zero without a structured error
    truncated,   ///< worker stream ended mid-frame (short write / kill)
    protocol,    ///< malformed frame, missing result, or garbage bytes
    worker,      ///< worker shipped a structured error frame (detail)
  };
  Kind kind = Kind::none;
  /// Which shard failed, in [0, shard_count).
  std::uint32_t shard = 0;
  /// Kind-dependent: errno, exit status, or signal number.
  int code = 0;
  /// Human-readable specifics (worker error message, frame diagnostics).
  std::string detail;
};

/// Name of a failure kind ("signal", "truncated", ...), for messages/tests.
[[nodiscard]] std::string_view to_string(ShardFailure::Kind kind) noexcept;

/// Structured failure of a sharded run. The what() string names the shard
/// and kind; failure() exposes the machine-readable fields.
class ShardError : public std::runtime_error {
 public:
  explicit ShardError(ShardFailure failure);
  [[nodiscard]] const ShardFailure& failure() const noexcept {
    return failure_;
  }

 private:
  ShardFailure failure_;
};

/// Parses HMDIV_SHARDS. Unset or empty yields 1 (no fan-out); a malformed
/// value (non-numeric, trailing garbage, 0, or > kMaxShards) also yields 1
/// but prints a one-time warning to stderr naming the bad value — the same
/// contract as HMDIV_THREADS, re-armed by detail::reset_env_warning().
[[nodiscard]] unsigned shard_count_from_env() noexcept;

/// Process-wide default worker count used when ShardOptions::shards is 0.
/// First call resolves it from the environment; the CLI's --shards flag
/// overrides it with set_default_shard_count().
[[nodiscard]] unsigned default_shard_count() noexcept;
void set_default_shard_count(unsigned shards) noexcept;

namespace detail {
/// Testing hook: re-arms the one-time malformed-HMDIV_SHARDS warning
/// (config.cpp's reset_env_warning() calls this too, so one hook re-arms
/// both environment warnings).
void reset_shard_env_warning() noexcept;
}  // namespace detail

/// A worker-side workload implementation: rebuilds the workload from
/// task.blob, computes the slice given by wire::shard_range(task) over its
/// own index space, and returns the result payload shipped to the parent.
/// Must be a plain function (workers run it in a fresh process).
using ShardHandler = std::vector<std::uint8_t> (*)(const wire::ShardTask&);

/// Registers `handler` under `name` (process-wide; later registrations of
/// the same name win, so tests can stub workloads). Workload modules
/// register at static-init time via ShardWorkloadRegistration.
void register_shard_workload(std::string_view name, ShardHandler handler);

/// Static registrar:
///   const ShardWorkloadRegistration reg{"sim.trial", &handle_trial};
struct ShardWorkloadRegistration {
  ShardWorkloadRegistration(std::string_view name, ShardHandler handler) {
    register_shard_workload(name, handler);
  }
};

/// Looks up a registered workload; nullptr when the name is unknown. The
/// worker entry point and the serve daemon's `shard` endpoint both dispatch
/// through this.
[[nodiscard]] ShardHandler find_shard_workload(std::string_view name);

/// Worker-side fault injection (test hook), parsed from
/// HMDIV_SHARD_FAULT="<mode>:<shard|*>" ('*' matches every task — the
/// deterministic spelling when the task → worker mapping is timing-
/// dependent, as it is under the pipelined coordinator's concurrent
/// startup). Pipe workers honour sigkill /
/// shortwrite / hang / exit_code; the serve shard endpoint honours
/// connreset (RST the connection instead of replying), slowdrain (stall
/// mid-reply past any per-task deadline), and delay — spelled
/// "delay:<shard|*>:<ms>" — which sleeps `ms` before shipping each reply
/// whose task starts at `shard` ('*' matches every task), emulating WAN
/// round-trip latency on loopback. Modes a transport does not implement
/// are ignored there.
enum class ShardFaultMode {
  none,
  sigkill,
  shortwrite,
  hang,
  exit_code,
  connreset,
  slowdrain,
  delay,
};

/// Fault mode for the worker executing `shard_index`; ShardFaultMode::none
/// unless HMDIV_SHARD_FAULT names this exact shard (or, for delay, '*').
[[nodiscard]] ShardFaultMode shard_fault_mode(std::uint32_t shard_index) noexcept;

/// Per-reply sleep of the delay fault, in milliseconds; 0 unless
/// HMDIV_SHARD_FAULT is a well-formed "delay:<shard|*>:<ms>".
[[nodiscard]] unsigned shard_fault_delay_ms() noexcept;

/// The hidden CLI flag that turns any hmdiv binary into a shard worker.
inline constexpr std::string_view kShardWorkerFlag = "--shard-worker";

/// True iff argv contains --shard-worker: main() should immediately
/// delegate to shard_worker_main() and exit with its return value.
[[nodiscard]] bool shard_worker_requested(int argc,
                                          const char* const* argv) noexcept;

/// Worker entry point: reads one task frame from stdin, sets the thread
/// budget and obs gate from the descriptor, dispatches to the registered
/// handler, and writes the result (+ obs snapshot) frames to stdout.
/// Returns the process exit code (0 on success; failures also ship an
/// error frame so the parent can report the cause, not just the code).
[[nodiscard]] int shard_worker_main();

/// Absolute path of the running binary (via /proc/self/exe); the default
/// worker image. Throws ShardError{spawn} if it cannot be resolved.
[[nodiscard]] std::string self_exe_path();

/// Parent-side fan-out engine. One ShardRunner::run spawns the workers,
/// hands out tasks, collects results, reaps children, and merges worker
/// obs registries into this process's global registry.
class ShardRunner {
 public:
  explicit ShardRunner(ShardOptions options = {});

  /// Worker count this runner will spawn (options.shards resolved against
  /// the process default, clamped to [1, kMaxShards]).
  [[nodiscard]] unsigned resolved_shards() const noexcept;

  /// Runs `workload` across resolved_shards() worker processes, handing
  /// every worker the same `blob` and its own shard index. Returns the raw
  /// result payloads in ascending shard order (the deterministic-merge
  /// order); workload wrappers decode and concatenate/fold them. Throws
  /// ShardError on any worker failure, after killing and reaping every
  /// child.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> run(
      std::string_view workload, std::span<const std::uint8_t> blob) const;

 private:
  ShardOptions options_;
};

}  // namespace hmdiv::exec
