#include "exec/shard.hpp"

#include <fcntl.h>
#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "exec/config.hpp"
#include "obs/obs.hpp"

namespace hmdiv::exec {

namespace {

using Clock = std::chrono::steady_clock;

// --- HMDIV_SHARDS ---------------------------------------------------------

constexpr unsigned kUnresolvedShards = ~0U;

std::atomic<unsigned> g_default_shards{kUnresolvedShards};
std::atomic<bool> g_shard_env_warned{false};

void warn_bad_shard_env(const char* raw) noexcept {
  if (g_shard_env_warned.exchange(true, std::memory_order_relaxed)) return;
  std::fprintf(stderr,
               "hmdiv: ignoring malformed HMDIV_SHARDS='%s' (expected an "
               "integer in [1, %u]); running unsharded\n",
               raw, kMaxShards);
}

// --- Workload registry ----------------------------------------------------

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, ShardHandler, std::less<>>& handler_registry() {
  static std::map<std::string, ShardHandler, std::less<>> registry;
  return registry;
}

// --- Low-level I/O helpers ------------------------------------------------

/// Blocks SIGPIPE for the calling thread so a write to a dead worker's
/// pipe returns EPIPE instead of killing the parent; pending SIGPIPEs we
/// caused are drained before the old mask is restored.
class SigpipeGuard {
 public:
  SigpipeGuard() {
    sigemptyset(&pipe_set_);
    sigaddset(&pipe_set_, SIGPIPE);
    blocked_ = pthread_sigmask(SIG_BLOCK, &pipe_set_, &old_mask_) == 0 &&
               sigismember(&old_mask_, SIGPIPE) == 0;
  }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;
  ~SigpipeGuard() {
    if (!blocked_) return;
    timespec zero{};
    for (;;) {
      const int sig = sigtimedwait(&pipe_set_, nullptr, &zero);
      if (sig == SIGPIPE) continue;  // drain one pending SIGPIPE, re-poll
      // EINTR: an unrelated signal handler ran mid-wait. Bailing out here
      // would restore the mask with a SIGPIPE still pending and kill the
      // process, so retry the drain instead.
      if (sig < 0 && errno == EINTR) continue;
      break;  // EAGAIN: nothing pending
    }
    pthread_sigmask(SIG_SETMASK, &old_mask_, nullptr);
  }

 private:
  sigset_t pipe_set_{};
  sigset_t old_mask_{};
  bool blocked_ = false;
};

/// Writes all of `bytes` to a blocking fd; false on any error (errno set).
bool write_all(int fd, std::span<const std::uint8_t> bytes) noexcept {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

int remaining_ms(Clock::time_point deadline) noexcept {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60'000) return 60'000;
  return static_cast<int>(left.count());
}

}  // namespace

// --- Worker-side fault injection (test hook) ------------------------------
// HMDIV_SHARD_FAULT="<mode>:<shard>" makes the worker for `shard`
// misbehave right before shipping its result: "sigkill" (SIGKILL itself
// mid-write), "shortwrite" (drop the final bytes of the stream and exit
// cleanly), "hang" (never write, sleep past any deadline), "exit" (exit 7
// without writing), and — over the serve transport only — "connreset"
// (RST the connection instead of replying) and "slowdrain" (stall
// mid-reply past any per-task deadline). Only fault-injection tests set
// this.

namespace {

/// Parses the "<ms>" tail of "delay:<shard|*>:<ms>"; true iff well-formed,
/// with `target_matches` reporting whether the middle field names
/// `shard_index` (or is '*').
bool parse_delay_fault(const char* target, std::uint32_t shard_index,
                       bool& target_matches, unsigned& delay_ms) noexcept {
  const char* second = std::strchr(target, ':');
  if (second == nullptr) return false;
  if (second == target + 1 && *target == '*') {
    target_matches = true;
  } else {
    char* end = nullptr;
    const unsigned long t = std::strtoul(target, &end, 10);
    if (end == target || end != second) return false;
    target_matches = t == shard_index;
  }
  char* end = nullptr;
  const unsigned long ms = std::strtoul(second + 1, &end, 10);
  if (end == second + 1 || *end != '\0' || ms > 60'000) return false;
  delay_ms = static_cast<unsigned>(ms);
  return true;
}

}  // namespace

ShardFaultMode shard_fault_mode(std::uint32_t shard_index) noexcept {
  const char* raw = std::getenv("HMDIV_SHARD_FAULT");
  if (raw == nullptr || *raw == '\0') return ShardFaultMode::none;
  const char* colon = std::strchr(raw, ':');
  if (colon == nullptr) return ShardFaultMode::none;
  const std::string mode(raw, static_cast<std::size_t>(colon - raw));
  if (mode == "delay") {
    bool matches = false;
    unsigned ms = 0;
    if (parse_delay_fault(colon + 1, shard_index, matches, ms) && matches) {
      return ShardFaultMode::delay;
    }
    return ShardFaultMode::none;
  }
  bool matches = false;
  if (colon[1] == '*' && colon[2] == '\0') {
    matches = true;  // every task, whichever worker it lands on
  } else {
    char* end = nullptr;
    const unsigned long target = std::strtoul(colon + 1, &end, 10);
    matches = end != colon + 1 && *end == '\0' && target == shard_index;
  }
  if (!matches) return ShardFaultMode::none;
  if (mode == "sigkill") return ShardFaultMode::sigkill;
  if (mode == "shortwrite") return ShardFaultMode::shortwrite;
  if (mode == "hang") return ShardFaultMode::hang;
  if (mode == "exit") return ShardFaultMode::exit_code;
  if (mode == "connreset") return ShardFaultMode::connreset;
  if (mode == "slowdrain") return ShardFaultMode::slowdrain;
  return ShardFaultMode::none;
}

unsigned shard_fault_delay_ms() noexcept {
  const char* raw = std::getenv("HMDIV_SHARD_FAULT");
  if (raw == nullptr || std::strncmp(raw, "delay:", 6) != 0) return 0;
  bool matches = false;
  unsigned ms = 0;
  if (!parse_delay_fault(raw + 6, 0, matches, ms)) return 0;
  return ms;
}

ShardHandler find_shard_workload(std::string_view name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = handler_registry().find(name);
  return it == handler_registry().end() ? nullptr : it->second;
}

namespace detail {

void reset_shard_env_warning() noexcept {
  g_shard_env_warned.store(false, std::memory_order_relaxed);
}

}  // namespace detail

unsigned shard_count_from_env() noexcept {
  const char* raw = std::getenv("HMDIV_SHARDS");
  if (raw == nullptr || *raw == '\0') return 1;
  char* end = nullptr;
  errno = 0;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE || value == 0 ||
      value > kMaxShards) {
    // Same rationale as HMDIV_THREADS: a silent fallback would hide a
    // deployment typo (HMDIV_SHARDS=8x quietly running unsharded).
    warn_bad_shard_env(raw);
    return 1;
  }
  return static_cast<unsigned>(value);
}

unsigned default_shard_count() noexcept {
  unsigned shards = g_default_shards.load(std::memory_order_relaxed);
  if (shards == kUnresolvedShards) {
    shards = shard_count_from_env();
    unsigned expected = kUnresolvedShards;
    if (!g_default_shards.compare_exchange_strong(
            expected, shards, std::memory_order_relaxed)) {
      shards = expected;
    }
  }
  return shards == 0 ? 1 : shards;
}

void set_default_shard_count(unsigned shards) noexcept {
  g_default_shards.store(shards == 0 ? 1 : shards,
                         std::memory_order_relaxed);
}

std::string_view to_string(ShardFailure::Kind kind) noexcept {
  switch (kind) {
    case ShardFailure::Kind::none: return "none";
    case ShardFailure::Kind::spawn: return "spawn";
    case ShardFailure::Kind::write: return "write";
    case ShardFailure::Kind::timeout: return "timeout";
    case ShardFailure::Kind::signal: return "signal";
    case ShardFailure::Kind::exit_code: return "exit_code";
    case ShardFailure::Kind::truncated: return "truncated";
    case ShardFailure::Kind::protocol: return "protocol";
    case ShardFailure::Kind::worker: return "worker";
  }
  return "unknown";
}

namespace {

// Built by appending only: mixing `const char* + std::string` here trips
// GCC 12's -Wrestrict false positive on the inlined concatenation under
// -O2 and above (same issue tests/CMakeLists.txt documents).
std::string describe(const ShardFailure& failure) {
  std::string out = "shard ";
  out += std::to_string(failure.shard);
  out += " failed (";
  out += to_string(failure.kind);
  if (failure.code != 0) {
    out += ' ';
    out += std::to_string(failure.code);
  }
  out += ')';
  if (!failure.detail.empty()) {
    out += ": ";
    out += failure.detail;
  }
  return out;
}

}  // namespace

ShardError::ShardError(ShardFailure failure)
    : std::runtime_error(describe(failure)), failure_(std::move(failure)) {}

void register_shard_workload(std::string_view name, ShardHandler handler) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  handler_registry()[std::string(name)] = handler;
}

bool shard_worker_requested(int argc, const char* const* argv) noexcept {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] != nullptr && kShardWorkerFlag == argv[i]) return true;
  }
  return false;
}

std::string self_exe_path() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n <= 0) {
    throw ShardError(ShardFailure{ShardFailure::Kind::spawn, 0, errno,
                                  "cannot resolve /proc/self/exe"});
  }
  buffer[n] = '\0';
  return std::string(buffer, static_cast<std::size_t>(n));
}

// --- Worker entry point ---------------------------------------------------

namespace {

/// Ships an error frame so the parent can report a cause, not just an exit
/// code. Best effort: if the pipe is gone the exit code still tells.
void write_error_frame(const std::string& message) noexcept {
  wire::Writer payload;
  payload.str(message);
  std::vector<std::uint8_t> out;
  wire::append_frame(out, wire::FrameType::error, payload.data());
  static_cast<void>(write_all(STDOUT_FILENO, out));
}

}  // namespace

int shard_worker_main() {
  wire::ShardTask task;
  try {
    // Read exactly one task frame from stdin (blocking).
    wire::FrameParser parser;
    std::optional<wire::Frame> frame;
    std::uint8_t buffer[1 << 16];
    while (!(frame = parser.next())) {
      const ssize_t n = ::read(STDIN_FILENO, buffer, sizeof buffer);
      if (n < 0) {
        if (errno == EINTR) continue;
        write_error_frame("shard worker: task read failed");
        return 3;
      }
      if (n == 0) {
        write_error_frame("shard worker: task stream truncated");
        return 3;
      }
      parser.feed({buffer, static_cast<std::size_t>(n)});
    }
    if (frame->type != wire::FrameType::task) {
      write_error_frame("shard worker: first frame is not a task");
      return 3;
    }
    task = wire::parse_task(frame->payload);
  } catch (const std::exception& e) {
    write_error_frame(std::string("shard worker: bad task: ") + e.what());
    return 3;
  }

  set_default_config(Config{task.threads});
  obs::set_enabled(task.obs_enabled);

  std::vector<std::uint8_t> payload;
  try {
    const ShardHandler handler = find_shard_workload(task.workload);
    if (handler == nullptr) {
      write_error_frame("shard worker: unknown workload '" + task.workload +
                        "'");
      return 3;
    }
    HMDIV_OBS_SCOPED_TIMER("exec.shard.worker_ns");
    payload = handler(task);
  } catch (const std::exception& e) {
    write_error_frame(std::string("shard worker: ") + task.workload + ": " +
                      e.what());
    return 1;
  }

  std::vector<std::uint8_t> out;
  wire::append_frame(out, wire::FrameType::result, payload);
  if (task.obs_enabled) {
    wire::append_frame(out, wire::FrameType::obs,
                       obs::serialize_snapshot(obs::registry_snapshot()));
  }

  switch (shard_fault_mode(task.shard_index)) {
    case ShardFaultMode::none:
    case ShardFaultMode::connreset:   // serve-transport faults: no-ops on
    case ShardFaultMode::slowdrain:   // the pipe transport
    case ShardFaultMode::delay:
      break;
    case ShardFaultMode::sigkill:
      // Die mid-stream: half the bytes make it out, then SIGKILL — the
      // parent must see a signal death plus a truncated frame, not hang.
      static_cast<void>(write_all(
          STDOUT_FILENO,
          std::span<const std::uint8_t>(out.data(), out.size() / 2)));
      ::raise(SIGKILL);
      break;
    case ShardFaultMode::shortwrite:
      // Clean exit but a short stream: parent must flag truncation.
      static_cast<void>(write_all(
          STDOUT_FILENO,
          std::span<const std::uint8_t>(
              out.data(), out.size() - std::min<std::size_t>(16,
                                                             out.size()))));
      return 0;
    case ShardFaultMode::hang:
      std::this_thread::sleep_for(std::chrono::hours(1));
      break;
    case ShardFaultMode::exit_code:
      return 7;
  }

  if (!write_all(STDOUT_FILENO, out)) return 4;
  return 0;
}

// --- Parent-side runner ---------------------------------------------------

namespace {

struct Worker {
  std::uint32_t shard = 0;
  pid_t pid = -1;
  int task_fd = -1;
  int result_fd = -1;
  std::vector<std::uint8_t> task_bytes;
  std::size_t task_written = 0;
  wire::FrameParser parser;
  std::vector<wire::Frame> frames;
  std::uint64_t bytes_received = 0;
  bool eof = false;
  bool killed_by_parent = false;
  bool reaped = false;
  int status = 0;
  ShardFailure io_failure;  ///< provisional; final cause picked post-reap

  [[nodiscard]] bool task_pending() const {
    return task_fd >= 0 && task_written < task_bytes.size();
  }
  [[nodiscard]] bool done() const {
    return eof && !task_pending() && io_failure.kind == ShardFailure::Kind::none;
  }
  void close_task() {
    if (task_fd >= 0) ::close(task_fd);
    task_fd = -1;
  }
  void close_result() {
    if (result_fd >= 0) ::close(result_fd);
    result_fd = -1;
    eof = true;
  }
};

void set_io_failure(Worker& worker, ShardFailure::Kind kind, int code,
                    std::string detail) {
  if (worker.io_failure.kind != ShardFailure::Kind::none) return;
  worker.io_failure =
      ShardFailure{kind, worker.shard, code, std::move(detail)};
}

/// fork + exec one worker; on success fills pid/task_fd/result_fd.
void spawn_worker(Worker& worker, const std::string& exe) {
  int task_pipe[2] = {-1, -1};
  int result_pipe[2] = {-1, -1};
  if (::pipe2(task_pipe, O_CLOEXEC) != 0) {
    throw ShardError(ShardFailure{ShardFailure::Kind::spawn, worker.shard,
                                  errno, "pipe2 failed"});
  }
  if (::pipe2(result_pipe, O_CLOEXEC) != 0) {
    const int saved = errno;
    ::close(task_pipe[0]);
    ::close(task_pipe[1]);
    throw ShardError(ShardFailure{ShardFailure::Kind::spawn, worker.shard,
                                  saved, "pipe2 failed"});
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(task_pipe[0]);
    ::close(task_pipe[1]);
    ::close(result_pipe[0]);
    ::close(result_pipe[1]);
    throw ShardError(ShardFailure{ShardFailure::Kind::spawn, worker.shard,
                                  saved, "fork failed"});
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec. dup2
    // clears O_CLOEXEC on the descriptor it creates; every other pipe fd
    // (including other workers') closes on exec.
    if (::dup2(task_pipe[0], STDIN_FILENO) < 0 ||
        ::dup2(result_pipe[1], STDOUT_FILENO) < 0) {
      ::_exit(127);
    }
    const char* argv[] = {exe.c_str(), kShardWorkerFlag.data(), nullptr};
    ::execv(exe.c_str(), const_cast<char* const*>(argv));
    ::_exit(127);  // surfaces as exit_code 127 on the parent
  }
  ::close(task_pipe[0]);
  ::close(result_pipe[1]);
  // Non-blocking parent ends: both sides are driven by one poll() loop
  // under the run deadline, so neither a full task pipe (worker not
  // reading) nor a stalled result stream can block the parent forever.
  ::fcntl(task_pipe[1], F_SETFL, O_NONBLOCK);
  ::fcntl(result_pipe[0], F_SETFL, O_NONBLOCK);
  worker.pid = pid;
  worker.task_fd = task_pipe[1];
  worker.result_fd = result_pipe[0];
}

/// Reaps `worker` within the grace window; SIGKILLs first if the deadline
/// passes. Every spawned pid goes through here exactly once on every
/// path, so no run ever leaks a zombie.
void reap_worker(Worker& worker, Clock::time_point grace_deadline) {
  if (worker.reaped || worker.pid < 0) return;
  for (;;) {
    const pid_t got = ::waitpid(worker.pid, &worker.status, WNOHANG);
    if (got == worker.pid) break;
    if (got < 0 && errno != EINTR) {
      worker.status = 0;
      break;
    }
    if (Clock::now() >= grace_deadline) {
      ::kill(worker.pid, SIGKILL);
      worker.killed_by_parent = true;
      if (::waitpid(worker.pid, &worker.status, 0) < 0) worker.status = 0;
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  worker.reaped = true;
}

void kill_worker(Worker& worker) {
  if (worker.pid >= 0 && !worker.reaped) {
    ::kill(worker.pid, SIGKILL);
    worker.killed_by_parent = true;
  }
}

/// Picks the most informative failure cause for one finished worker, in
/// fixed precedence order; Kind::none when the shard succeeded.
ShardFailure diagnose(Worker& worker, bool timed_out) {
  // A structured error frame from the worker beats everything: it names
  // the actual exception instead of the exit code it caused.
  for (const wire::Frame& frame : worker.frames) {
    if (frame.type == wire::FrameType::error) {
      std::string message = "worker error";
      try {
        wire::Reader reader(frame.payload);
        message = reader.str();
      } catch (const wire::ProtocolError&) {
      }
      return ShardFailure{ShardFailure::Kind::worker, worker.shard, 0,
                          std::move(message)};
    }
  }
  if (timed_out || worker.killed_by_parent) {
    return ShardFailure{ShardFailure::Kind::timeout, worker.shard, 0,
                        "deadline expired before the worker finished"};
  }
  if (WIFSIGNALED(worker.status)) {
    return ShardFailure{ShardFailure::Kind::signal, worker.shard,
                        WTERMSIG(worker.status),
                        std::string("worker killed by signal ") +
                            std::to_string(WTERMSIG(worker.status))};
  }
  if (WIFEXITED(worker.status) && WEXITSTATUS(worker.status) != 0) {
    const int code = WEXITSTATUS(worker.status);
    return ShardFailure{ShardFailure::Kind::exit_code, worker.shard, code,
                        code == 127 ? "exit code 127 (exec failed?)"
                                    : "worker exited non-zero"};
  }
  if (worker.io_failure.kind != ShardFailure::Kind::none) {
    return worker.io_failure;
  }
  if (!worker.parser.idle()) {
    return ShardFailure{ShardFailure::Kind::truncated, worker.shard, 0,
                        "result stream ended mid-frame (" +
                            std::to_string(worker.parser.buffered()) +
                            " bytes pending)"};
  }
  bool have_result = false;
  for (const wire::Frame& frame : worker.frames) {
    have_result = have_result || frame.type == wire::FrameType::result;
  }
  if (!have_result) {
    return ShardFailure{ShardFailure::Kind::protocol, worker.shard, 0,
                        "worker stream held no result frame"};
  }
  return ShardFailure{};
}

}  // namespace

ShardRunner::ShardRunner(ShardOptions options) : options_(std::move(options)) {}

unsigned ShardRunner::resolved_shards() const noexcept {
  unsigned shards =
      options_.shards == 0 ? default_shard_count() : options_.shards;
  if (shards == 0) shards = 1;
  return shards > kMaxShards ? kMaxShards : shards;
}

std::vector<std::vector<std::uint8_t>> ShardRunner::run(
    std::string_view workload, std::span<const std::uint8_t> blob) const {
  const unsigned shards = resolved_shards();
  HMDIV_OBS_SCOPED_TIMER("exec.shard.run_ns");
  HMDIV_OBS_COUNT("exec.shard.runs", 1);
  HMDIV_OBS_COUNT("exec.shard.workers", shards);

  const std::string exe = options_.exe.empty() ? self_exe_path() : options_.exe;
  const bool ship_obs = obs::enabled();
  const auto deadline = Clock::now() + options_.deadline;

  std::vector<Worker> workers(shards);
  bool timed_out = false;

  // Everything after the first spawn must reap on the way out; wrap the
  // poll loop so any exception (spawn failure, protocol error, bad_alloc)
  // still kills and reaps every child.
  const auto kill_and_reap_all = [&]() {
    for (Worker& worker : workers) kill_worker(worker);
    const auto grace = Clock::now() + std::chrono::seconds(2);
    for (Worker& worker : workers) {
      worker.close_task();
      worker.close_result();
      reap_worker(worker, grace);
    }
  };

  try {
    // Spawn the fleet and stage each worker's task frame.
    for (std::uint32_t s = 0; s < shards; ++s) {
      Worker& worker = workers[s];
      worker.shard = s;
      spawn_worker(worker, exe);
      wire::ShardTask task;
      task.workload = std::string(workload);
      task.shard_index = s;
      task.shard_count = shards;
      // Resolve the per-worker budget here so HMDIV_THREADS (already folded
      // into the parent's default config) reaches workers even though they
      // override their own env-derived default with this value.
      task.threads = options_.threads ? options_.threads
                                      : default_config().threads;
      task.obs_enabled = ship_obs;
      task.blob.assign(blob.begin(), blob.end());
      wire::append_frame(worker.task_bytes, wire::FrameType::task,
                         wire::serialize_task(task));
      HMDIV_OBS_COUNT("exec.shard.bytes_out", worker.task_bytes.size());
    }

    // One poll() loop drives task hand-off and result collection for the
    // whole fleet under the shared deadline.
    const SigpipeGuard sigpipe_guard;
    std::vector<pollfd> fds;
    std::vector<Worker*> fd_owner;
    std::vector<bool> fd_is_task;
    std::uint8_t buffer[1 << 16];
    for (;;) {
      fds.clear();
      fd_owner.clear();
      fd_is_task.clear();
      for (Worker& worker : workers) {
        if (worker.task_pending()) {
          fds.push_back(pollfd{worker.task_fd, POLLOUT, 0});
          fd_owner.push_back(&worker);
          fd_is_task.push_back(true);
        }
        if (!worker.eof && worker.result_fd >= 0) {
          fds.push_back(pollfd{worker.result_fd, POLLIN, 0});
          fd_owner.push_back(&worker);
          fd_is_task.push_back(false);
        }
      }
      if (fds.empty()) break;

      const int timeout = remaining_ms(deadline);
      if (timeout <= 0) {
        timed_out = true;
        break;
      }
      const int ready = ::poll(fds.data(), fds.size(), timeout);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw ShardError(ShardFailure{ShardFailure::Kind::spawn, 0, errno,
                                      "poll failed"});
      }
      if (ready == 0) {
        timed_out = true;
        break;
      }

      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        Worker& worker = *fd_owner[i];
        if (fd_is_task[i]) {
          // Hand-off: push as much of the task frame as the pipe takes.
          const ssize_t n = ::write(
              worker.task_fd, worker.task_bytes.data() + worker.task_written,
              worker.task_bytes.size() - worker.task_written);
          if (n < 0) {
            if (errno != EAGAIN && errno != EINTR) {
              // Usually EPIPE because the worker died; the real cause
              // surfaces from waitpid/frames, this is the fallback.
              set_io_failure(worker, ShardFailure::Kind::write, errno,
                             "task hand-off failed");
              worker.close_task();
            }
          } else {
            worker.task_written += static_cast<std::size_t>(n);
            if (worker.task_written == worker.task_bytes.size()) {
              worker.close_task();  // EOF tells the worker the task is whole
            }
          }
        } else {
          const ssize_t n = ::read(worker.result_fd, buffer, sizeof buffer);
          if (n < 0) {
            if (errno != EAGAIN && errno != EINTR) {
              set_io_failure(worker, ShardFailure::Kind::protocol, errno,
                             "result read failed");
              worker.close_result();
            }
          } else if (n == 0) {
            worker.close_result();
          } else {
            worker.bytes_received += static_cast<std::uint64_t>(n);
            HMDIV_OBS_COUNT("exec.shard.bytes_in", n);
            try {
              worker.parser.feed({buffer, static_cast<std::size_t>(n)});
              while (auto frame = worker.parser.next()) {
                worker.frames.push_back(std::move(*frame));
              }
            } catch (const wire::ProtocolError& e) {
              set_io_failure(worker, ShardFailure::Kind::protocol, 0,
                             e.what());
              worker.close_result();
            }
          }
        }
      }
    }
  } catch (...) {
    HMDIV_OBS_COUNT("exec.shard.failures", 1);
    kill_and_reap_all();
    throw;
  }

  // Collection is over (all streams closed, or the deadline expired with
  // some workers unfinished). Kill whatever is still running, then reap
  // every child — also the well-behaved ones.
  for (Worker& worker : workers) {
    if (!worker.done() || timed_out) {
      if (!worker.eof || worker.task_pending()) kill_worker(worker);
    }
    worker.close_task();
  }
  {
    const auto grace = Clock::now() + std::chrono::seconds(2);
    for (Worker& worker : workers) {
      worker.close_result();
      reap_worker(worker, grace);
    }
  }

  // Diagnose in ascending shard order; the first failure wins.
  for (Worker& worker : workers) {
    const bool worker_timed_out = timed_out && !worker.eof;
    ShardFailure failure = diagnose(worker, worker_timed_out);
    if (failure.kind != ShardFailure::Kind::none) {
      HMDIV_OBS_COUNT("exec.shard.failures", 1);
      throw ShardError(std::move(failure));
    }
  }

  // Deterministic merge epilogue: results in ascending shard order, and
  // every worker's obs registry folded into this process's.
  HMDIV_OBS_SCOPED_TIMER("exec.shard.merge_ns");
  std::vector<std::vector<std::uint8_t>> results;
  results.reserve(shards);
  for (Worker& worker : workers) {
    std::vector<std::uint8_t> payload;
    for (wire::Frame& frame : worker.frames) {
      if (frame.type == wire::FrameType::result) {
        payload = std::move(frame.payload);
      } else if (frame.type == wire::FrameType::obs) {
        try {
          obs::Registry::global().merge(obs::parse_snapshot(frame.payload));
        } catch (const std::exception& e) {
          throw ShardError(ShardFailure{ShardFailure::Kind::protocol,
                                        worker.shard, 0,
                                        std::string("bad obs frame: ") +
                                            e.what()});
        }
      }
    }
    results.push_back(std::move(payload));
  }
  return results;
}

}  // namespace hmdiv::exec
