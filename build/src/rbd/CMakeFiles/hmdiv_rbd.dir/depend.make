# Empty dependencies file for hmdiv_rbd.
# This may be replaced when dependencies are built.
