file(REMOVE_RECURSE
  "libhmdiv_rbd.a"
)
