file(REMOVE_RECURSE
  "CMakeFiles/hmdiv_rbd.dir/conditional.cpp.o"
  "CMakeFiles/hmdiv_rbd.dir/conditional.cpp.o.d"
  "CMakeFiles/hmdiv_rbd.dir/importance.cpp.o"
  "CMakeFiles/hmdiv_rbd.dir/importance.cpp.o.d"
  "CMakeFiles/hmdiv_rbd.dir/structure.cpp.o"
  "CMakeFiles/hmdiv_rbd.dir/structure.cpp.o.d"
  "libhmdiv_rbd.a"
  "libhmdiv_rbd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmdiv_rbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
