
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rbd/conditional.cpp" "src/rbd/CMakeFiles/hmdiv_rbd.dir/conditional.cpp.o" "gcc" "src/rbd/CMakeFiles/hmdiv_rbd.dir/conditional.cpp.o.d"
  "/root/repo/src/rbd/importance.cpp" "src/rbd/CMakeFiles/hmdiv_rbd.dir/importance.cpp.o" "gcc" "src/rbd/CMakeFiles/hmdiv_rbd.dir/importance.cpp.o.d"
  "/root/repo/src/rbd/structure.cpp" "src/rbd/CMakeFiles/hmdiv_rbd.dir/structure.cpp.o" "gcc" "src/rbd/CMakeFiles/hmdiv_rbd.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/hmdiv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
