# CMake generated Testfile for 
# Source directory: /root/repo/src/cli
# Build directory: /root/repo/build/src/cli
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_example "/root/repo/build/src/cli/hmdiv_analyze" "--example")
set_tests_properties(cli_example PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;6;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(cli_example_text "/root/repo/build/src/cli/hmdiv_analyze" "--example" "--text" "--improve" "difficult=0.1")
set_tests_properties(cli_example_text PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;7;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_flag "/root/repo/build/src/cli/hmdiv_analyze" "--bogus")
set_tests_properties(cli_rejects_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;9;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
