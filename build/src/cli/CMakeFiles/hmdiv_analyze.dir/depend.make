# Empty dependencies file for hmdiv_analyze.
# This may be replaced when dependencies are built.
