file(REMOVE_RECURSE
  "CMakeFiles/hmdiv_analyze.dir/hmdiv_analyze.cpp.o"
  "CMakeFiles/hmdiv_analyze.dir/hmdiv_analyze.cpp.o.d"
  "hmdiv_analyze"
  "hmdiv_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmdiv_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
