
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/hmdiv_analyze.cpp" "src/cli/CMakeFiles/hmdiv_analyze.dir/hmdiv_analyze.cpp.o" "gcc" "src/cli/CMakeFiles/hmdiv_analyze.dir/hmdiv_analyze.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hmdiv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hmdiv_report.dir/DependInfo.cmake"
  "/root/repo/build/src/rbd/CMakeFiles/hmdiv_rbd.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hmdiv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
