file(REMOVE_RECURSE
  "CMakeFiles/hmdiv_report.dir/csv.cpp.o"
  "CMakeFiles/hmdiv_report.dir/csv.cpp.o.d"
  "CMakeFiles/hmdiv_report.dir/format.cpp.o"
  "CMakeFiles/hmdiv_report.dir/format.cpp.o.d"
  "CMakeFiles/hmdiv_report.dir/table.cpp.o"
  "CMakeFiles/hmdiv_report.dir/table.cpp.o.d"
  "libhmdiv_report.a"
  "libhmdiv_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmdiv_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
