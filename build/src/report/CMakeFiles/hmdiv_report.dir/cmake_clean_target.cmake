file(REMOVE_RECURSE
  "libhmdiv_report.a"
)
