# Empty dependencies file for hmdiv_report.
# This may be replaced when dependencies are built.
