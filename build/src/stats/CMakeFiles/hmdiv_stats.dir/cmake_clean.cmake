file(REMOVE_RECURSE
  "CMakeFiles/hmdiv_stats.dir/beta_binomial.cpp.o"
  "CMakeFiles/hmdiv_stats.dir/beta_binomial.cpp.o.d"
  "CMakeFiles/hmdiv_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/hmdiv_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/hmdiv_stats.dir/distributions.cpp.o"
  "CMakeFiles/hmdiv_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/hmdiv_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/hmdiv_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/hmdiv_stats.dir/intervals.cpp.o"
  "CMakeFiles/hmdiv_stats.dir/intervals.cpp.o.d"
  "CMakeFiles/hmdiv_stats.dir/rng.cpp.o"
  "CMakeFiles/hmdiv_stats.dir/rng.cpp.o.d"
  "CMakeFiles/hmdiv_stats.dir/special.cpp.o"
  "CMakeFiles/hmdiv_stats.dir/special.cpp.o.d"
  "CMakeFiles/hmdiv_stats.dir/summary.cpp.o"
  "CMakeFiles/hmdiv_stats.dir/summary.cpp.o.d"
  "libhmdiv_stats.a"
  "libhmdiv_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmdiv_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
