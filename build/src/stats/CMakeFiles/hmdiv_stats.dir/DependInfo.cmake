
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/beta_binomial.cpp" "src/stats/CMakeFiles/hmdiv_stats.dir/beta_binomial.cpp.o" "gcc" "src/stats/CMakeFiles/hmdiv_stats.dir/beta_binomial.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/hmdiv_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/hmdiv_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/hmdiv_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/hmdiv_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/hypothesis.cpp" "src/stats/CMakeFiles/hmdiv_stats.dir/hypothesis.cpp.o" "gcc" "src/stats/CMakeFiles/hmdiv_stats.dir/hypothesis.cpp.o.d"
  "/root/repo/src/stats/intervals.cpp" "src/stats/CMakeFiles/hmdiv_stats.dir/intervals.cpp.o" "gcc" "src/stats/CMakeFiles/hmdiv_stats.dir/intervals.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/hmdiv_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/hmdiv_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/hmdiv_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/hmdiv_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/hmdiv_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/hmdiv_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
