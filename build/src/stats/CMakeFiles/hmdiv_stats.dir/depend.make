# Empty dependencies file for hmdiv_stats.
# This may be replaced when dependencies are built.
