file(REMOVE_RECURSE
  "libhmdiv_stats.a"
)
