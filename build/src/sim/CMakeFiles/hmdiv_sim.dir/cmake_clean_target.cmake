file(REMOVE_RECURSE
  "libhmdiv_sim.a"
)
