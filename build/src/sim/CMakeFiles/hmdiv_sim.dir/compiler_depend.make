# Empty compiler generated dependencies file for hmdiv_sim.
# This may be replaced when dependencies are built.
