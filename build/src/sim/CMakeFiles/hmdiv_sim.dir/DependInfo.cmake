
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cadt.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/cadt.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/cadt.cpp.o.d"
  "/root/repo/src/sim/case_generator.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/case_generator.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/case_generator.cpp.o.d"
  "/root/repo/src/sim/estimation.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/estimation.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/estimation.cpp.o.d"
  "/root/repo/src/sim/feature_world.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/feature_world.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/feature_world.cpp.o.d"
  "/root/repo/src/sim/ground_truth.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/ground_truth.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/ground_truth.cpp.o.d"
  "/root/repo/src/sim/parallel_world.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/parallel_world.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/parallel_world.cpp.o.d"
  "/root/repo/src/sim/reader.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/reader.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/reader.cpp.o.d"
  "/root/repo/src/sim/reader_panel.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/reader_panel.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/reader_panel.cpp.o.d"
  "/root/repo/src/sim/tabular_world.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/tabular_world.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/tabular_world.cpp.o.d"
  "/root/repo/src/sim/trial.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/trial.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/trial.cpp.o.d"
  "/root/repo/src/sim/two_reader_world.cpp" "src/sim/CMakeFiles/hmdiv_sim.dir/two_reader_world.cpp.o" "gcc" "src/sim/CMakeFiles/hmdiv_sim.dir/two_reader_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hmdiv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hmdiv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rbd/CMakeFiles/hmdiv_rbd.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hmdiv_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
