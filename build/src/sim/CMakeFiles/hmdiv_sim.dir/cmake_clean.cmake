file(REMOVE_RECURSE
  "CMakeFiles/hmdiv_sim.dir/cadt.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/cadt.cpp.o.d"
  "CMakeFiles/hmdiv_sim.dir/case_generator.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/case_generator.cpp.o.d"
  "CMakeFiles/hmdiv_sim.dir/estimation.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/estimation.cpp.o.d"
  "CMakeFiles/hmdiv_sim.dir/feature_world.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/feature_world.cpp.o.d"
  "CMakeFiles/hmdiv_sim.dir/ground_truth.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/ground_truth.cpp.o.d"
  "CMakeFiles/hmdiv_sim.dir/parallel_world.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/parallel_world.cpp.o.d"
  "CMakeFiles/hmdiv_sim.dir/reader.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/reader.cpp.o.d"
  "CMakeFiles/hmdiv_sim.dir/reader_panel.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/reader_panel.cpp.o.d"
  "CMakeFiles/hmdiv_sim.dir/tabular_world.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/tabular_world.cpp.o.d"
  "CMakeFiles/hmdiv_sim.dir/trial.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/trial.cpp.o.d"
  "CMakeFiles/hmdiv_sim.dir/two_reader_world.cpp.o"
  "CMakeFiles/hmdiv_sim.dir/two_reader_world.cpp.o.d"
  "libhmdiv_sim.a"
  "libhmdiv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmdiv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
