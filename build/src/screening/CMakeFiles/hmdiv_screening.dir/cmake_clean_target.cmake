file(REMOVE_RECURSE
  "libhmdiv_screening.a"
)
