# Empty dependencies file for hmdiv_screening.
# This may be replaced when dependencies are built.
