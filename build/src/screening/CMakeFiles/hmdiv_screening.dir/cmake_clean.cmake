file(REMOVE_RECURSE
  "CMakeFiles/hmdiv_screening.dir/metrics.cpp.o"
  "CMakeFiles/hmdiv_screening.dir/metrics.cpp.o.d"
  "CMakeFiles/hmdiv_screening.dir/policies.cpp.o"
  "CMakeFiles/hmdiv_screening.dir/policies.cpp.o.d"
  "CMakeFiles/hmdiv_screening.dir/population.cpp.o"
  "CMakeFiles/hmdiv_screening.dir/population.cpp.o.d"
  "CMakeFiles/hmdiv_screening.dir/programme.cpp.o"
  "CMakeFiles/hmdiv_screening.dir/programme.cpp.o.d"
  "CMakeFiles/hmdiv_screening.dir/tuning.cpp.o"
  "CMakeFiles/hmdiv_screening.dir/tuning.cpp.o.d"
  "libhmdiv_screening.a"
  "libhmdiv_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmdiv_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
