
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/screening/metrics.cpp" "src/screening/CMakeFiles/hmdiv_screening.dir/metrics.cpp.o" "gcc" "src/screening/CMakeFiles/hmdiv_screening.dir/metrics.cpp.o.d"
  "/root/repo/src/screening/policies.cpp" "src/screening/CMakeFiles/hmdiv_screening.dir/policies.cpp.o" "gcc" "src/screening/CMakeFiles/hmdiv_screening.dir/policies.cpp.o.d"
  "/root/repo/src/screening/population.cpp" "src/screening/CMakeFiles/hmdiv_screening.dir/population.cpp.o" "gcc" "src/screening/CMakeFiles/hmdiv_screening.dir/population.cpp.o.d"
  "/root/repo/src/screening/programme.cpp" "src/screening/CMakeFiles/hmdiv_screening.dir/programme.cpp.o" "gcc" "src/screening/CMakeFiles/hmdiv_screening.dir/programme.cpp.o.d"
  "/root/repo/src/screening/tuning.cpp" "src/screening/CMakeFiles/hmdiv_screening.dir/tuning.cpp.o" "gcc" "src/screening/CMakeFiles/hmdiv_screening.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hmdiv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmdiv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rbd/CMakeFiles/hmdiv_rbd.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hmdiv_report.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hmdiv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
