
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cpp" "src/core/CMakeFiles/hmdiv_core.dir/aggregation.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/aggregation.cpp.o.d"
  "/root/repo/src/core/analysis_report.cpp" "src/core/CMakeFiles/hmdiv_core.dir/analysis_report.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/analysis_report.cpp.o.d"
  "/root/repo/src/core/demand_profile.cpp" "src/core/CMakeFiles/hmdiv_core.dir/demand_profile.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/demand_profile.cpp.o.d"
  "/root/repo/src/core/describe.cpp" "src/core/CMakeFiles/hmdiv_core.dir/describe.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/describe.cpp.o.d"
  "/root/repo/src/core/design_advisor.cpp" "src/core/CMakeFiles/hmdiv_core.dir/design_advisor.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/design_advisor.cpp.o.d"
  "/root/repo/src/core/dual_model.cpp" "src/core/CMakeFiles/hmdiv_core.dir/dual_model.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/dual_model.cpp.o.d"
  "/root/repo/src/core/extrapolation.cpp" "src/core/CMakeFiles/hmdiv_core.dir/extrapolation.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/extrapolation.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/hmdiv_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/multi_reader.cpp" "src/core/CMakeFiles/hmdiv_core.dir/multi_reader.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/multi_reader.cpp.o.d"
  "/root/repo/src/core/paper_example.cpp" "src/core/CMakeFiles/hmdiv_core.dir/paper_example.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/paper_example.cpp.o.d"
  "/root/repo/src/core/parallel_model.cpp" "src/core/CMakeFiles/hmdiv_core.dir/parallel_model.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/parallel_model.cpp.o.d"
  "/root/repo/src/core/roc.cpp" "src/core/CMakeFiles/hmdiv_core.dir/roc.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/roc.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/hmdiv_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/sequential_model.cpp" "src/core/CMakeFiles/hmdiv_core.dir/sequential_model.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/sequential_model.cpp.o.d"
  "/root/repo/src/core/tradeoff.cpp" "src/core/CMakeFiles/hmdiv_core.dir/tradeoff.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/tradeoff.cpp.o.d"
  "/root/repo/src/core/trial_design.cpp" "src/core/CMakeFiles/hmdiv_core.dir/trial_design.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/trial_design.cpp.o.d"
  "/root/repo/src/core/uncertainty.cpp" "src/core/CMakeFiles/hmdiv_core.dir/uncertainty.cpp.o" "gcc" "src/core/CMakeFiles/hmdiv_core.dir/uncertainty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/hmdiv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rbd/CMakeFiles/hmdiv_rbd.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hmdiv_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
