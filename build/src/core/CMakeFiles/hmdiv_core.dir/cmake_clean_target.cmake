file(REMOVE_RECURSE
  "libhmdiv_core.a"
)
