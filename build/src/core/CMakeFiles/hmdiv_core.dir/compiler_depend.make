# Empty compiler generated dependencies file for hmdiv_core.
# This may be replaced when dependencies are built.
