# Empty compiler generated dependencies file for hmdiv_tests.
# This may be replaced when dependencies are built.
