
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aggregation.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_aggregation.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_aggregation.cpp.o.d"
  "/root/repo/tests/test_analysis_report.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_analysis_report.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_analysis_report.cpp.o.d"
  "/root/repo/tests/test_beta_binomial.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_beta_binomial.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_beta_binomial.cpp.o.d"
  "/root/repo/tests/test_bootstrap.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_bootstrap.cpp.o.d"
  "/root/repo/tests/test_cadt.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_cadt.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_cadt.cpp.o.d"
  "/root/repo/tests/test_case_generator.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_case_generator.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_case_generator.cpp.o.d"
  "/root/repo/tests/test_demand_profile.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_demand_profile.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_demand_profile.cpp.o.d"
  "/root/repo/tests/test_describe.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_describe.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_describe.cpp.o.d"
  "/root/repo/tests/test_design_advisor.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_design_advisor.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_design_advisor.cpp.o.d"
  "/root/repo/tests/test_distributions.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/test_dual_model.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_dual_model.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_dual_model.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_extrapolation.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_extrapolation.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_extrapolation.cpp.o.d"
  "/root/repo/tests/test_feature_world.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_feature_world.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_feature_world.cpp.o.d"
  "/root/repo/tests/test_format.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_format.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_format.cpp.o.d"
  "/root/repo/tests/test_hypothesis.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_hypothesis.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_hypothesis.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_intervals.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_intervals.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_intervals.cpp.o.d"
  "/root/repo/tests/test_model_io.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_model_io.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_model_io.cpp.o.d"
  "/root/repo/tests/test_multi_reader.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_multi_reader.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_multi_reader.cpp.o.d"
  "/root/repo/tests/test_paper_tables.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_paper_tables.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_paper_tables.cpp.o.d"
  "/root/repo/tests/test_parallel_model.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_parallel_model.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_parallel_model.cpp.o.d"
  "/root/repo/tests/test_parallel_world.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_parallel_world.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_parallel_world.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rbd_conditional.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_rbd_conditional.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_rbd_conditional.cpp.o.d"
  "/root/repo/tests/test_rbd_importance.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_rbd_importance.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_rbd_importance.cpp.o.d"
  "/root/repo/tests/test_rbd_structure.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_rbd_structure.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_rbd_structure.cpp.o.d"
  "/root/repo/tests/test_reader.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_reader.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_reader.cpp.o.d"
  "/root/repo/tests/test_reader_panel.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_reader_panel.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_reader_panel.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_roc.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_roc.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_roc.cpp.o.d"
  "/root/repo/tests/test_screening.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_screening.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_screening.cpp.o.d"
  "/root/repo/tests/test_sensitivity.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_sensitivity.cpp.o.d"
  "/root/repo/tests/test_sequential_model.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_sequential_model.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_sequential_model.cpp.o.d"
  "/root/repo/tests/test_special.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_special.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_special.cpp.o.d"
  "/root/repo/tests/test_summary.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_summary.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_summary.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_tradeoff.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_tradeoff.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_tradeoff.cpp.o.d"
  "/root/repo/tests/test_trial_design.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_trial_design.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_trial_design.cpp.o.d"
  "/root/repo/tests/test_trial_estimation.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_trial_estimation.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_trial_estimation.cpp.o.d"
  "/root/repo/tests/test_tuning.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_tuning.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_tuning.cpp.o.d"
  "/root/repo/tests/test_two_reader_world.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_two_reader_world.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_two_reader_world.cpp.o.d"
  "/root/repo/tests/test_uncertainty.cpp" "tests/CMakeFiles/hmdiv_tests.dir/test_uncertainty.cpp.o" "gcc" "tests/CMakeFiles/hmdiv_tests.dir/test_uncertainty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/screening/CMakeFiles/hmdiv_screening.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmdiv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmdiv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rbd/CMakeFiles/hmdiv_rbd.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hmdiv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hmdiv_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
