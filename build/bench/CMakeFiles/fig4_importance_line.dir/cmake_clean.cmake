file(REMOVE_RECURSE
  "CMakeFiles/fig4_importance_line.dir/fig4_importance_line.cpp.o"
  "CMakeFiles/fig4_importance_line.dir/fig4_importance_line.cpp.o.d"
  "fig4_importance_line"
  "fig4_importance_line.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_importance_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
