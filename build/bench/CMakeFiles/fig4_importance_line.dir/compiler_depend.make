# Empty compiler generated dependencies file for fig4_importance_line.
# This may be replaced when dependencies are built.
