file(REMOVE_RECURSE
  "CMakeFiles/table3_improvement.dir/table3_improvement.cpp.o"
  "CMakeFiles/table3_improvement.dir/table3_improvement.cpp.o.d"
  "table3_improvement"
  "table3_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
