file(REMOVE_RECURSE
  "CMakeFiles/diversity_ablation.dir/diversity_ablation.cpp.o"
  "CMakeFiles/diversity_ablation.dir/diversity_ablation.cpp.o.d"
  "diversity_ablation"
  "diversity_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversity_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
