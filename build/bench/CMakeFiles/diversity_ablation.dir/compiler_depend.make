# Empty compiler generated dependencies file for diversity_ablation.
# This may be replaced when dependencies are built.
