file(REMOVE_RECURSE
  "CMakeFiles/aggregation_bias.dir/aggregation_bias.cpp.o"
  "CMakeFiles/aggregation_bias.dir/aggregation_bias.cpp.o.d"
  "aggregation_bias"
  "aggregation_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregation_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
