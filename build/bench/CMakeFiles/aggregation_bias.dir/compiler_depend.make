# Empty compiler generated dependencies file for aggregation_bias.
# This may be replaced when dependencies are built.
