# Empty dependencies file for dual_mode_whatif.
# This may be replaced when dependencies are built.
