file(REMOVE_RECURSE
  "CMakeFiles/dual_mode_whatif.dir/dual_mode_whatif.cpp.o"
  "CMakeFiles/dual_mode_whatif.dir/dual_mode_whatif.cpp.o.d"
  "dual_mode_whatif"
  "dual_mode_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_mode_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
