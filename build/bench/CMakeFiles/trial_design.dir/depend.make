# Empty dependencies file for trial_design.
# This may be replaced when dependencies are built.
