file(REMOVE_RECURSE
  "CMakeFiles/trial_design.dir/trial_design.cpp.o"
  "CMakeFiles/trial_design.dir/trial_design.cpp.o.d"
  "trial_design"
  "trial_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trial_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
