# Empty compiler generated dependencies file for complacency_dynamics.
# This may be replaced when dependencies are built.
