file(REMOVE_RECURSE
  "CMakeFiles/complacency_dynamics.dir/complacency_dynamics.cpp.o"
  "CMakeFiles/complacency_dynamics.dir/complacency_dynamics.cpp.o.d"
  "complacency_dynamics"
  "complacency_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complacency_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
