file(REMOVE_RECURSE
  "CMakeFiles/programme_comparison.dir/programme_comparison.cpp.o"
  "CMakeFiles/programme_comparison.dir/programme_comparison.cpp.o.d"
  "programme_comparison"
  "programme_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/programme_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
