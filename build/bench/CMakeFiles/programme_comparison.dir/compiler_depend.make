# Empty compiler generated dependencies file for programme_comparison.
# This may be replaced when dependencies are built.
