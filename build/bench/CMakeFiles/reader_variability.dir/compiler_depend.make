# Empty compiler generated dependencies file for reader_variability.
# This may be replaced when dependencies are built.
