file(REMOVE_RECURSE
  "CMakeFiles/reader_variability.dir/reader_variability.cpp.o"
  "CMakeFiles/reader_variability.dir/reader_variability.cpp.o.d"
  "reader_variability"
  "reader_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reader_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
