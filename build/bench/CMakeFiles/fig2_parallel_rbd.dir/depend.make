# Empty dependencies file for fig2_parallel_rbd.
# This may be replaced when dependencies are built.
