file(REMOVE_RECURSE
  "CMakeFiles/fig2_parallel_rbd.dir/fig2_parallel_rbd.cpp.o"
  "CMakeFiles/fig2_parallel_rbd.dir/fig2_parallel_rbd.cpp.o.d"
  "fig2_parallel_rbd"
  "fig2_parallel_rbd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_parallel_rbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
