
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_parallel_rbd.cpp" "bench/CMakeFiles/fig2_parallel_rbd.dir/fig2_parallel_rbd.cpp.o" "gcc" "bench/CMakeFiles/fig2_parallel_rbd.dir/fig2_parallel_rbd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/screening/CMakeFiles/hmdiv_screening.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmdiv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmdiv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rbd/CMakeFiles/hmdiv_rbd.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hmdiv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hmdiv_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
