# Empty compiler generated dependencies file for fig3_sequential_pipeline.
# This may be replaced when dependencies are built.
