file(REMOVE_RECURSE
  "CMakeFiles/fig3_sequential_pipeline.dir/fig3_sequential_pipeline.cpp.o"
  "CMakeFiles/fig3_sequential_pipeline.dir/fig3_sequential_pipeline.cpp.o.d"
  "fig3_sequential_pipeline"
  "fig3_sequential_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_sequential_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
