# Empty dependencies file for tradeoff_roc.
# This may be replaced when dependencies are built.
