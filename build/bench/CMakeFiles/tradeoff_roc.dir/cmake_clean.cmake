file(REMOVE_RECURSE
  "CMakeFiles/tradeoff_roc.dir/tradeoff_roc.cpp.o"
  "CMakeFiles/tradeoff_roc.dir/tradeoff_roc.cpp.o.d"
  "tradeoff_roc"
  "tradeoff_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
