# Empty compiler generated dependencies file for covariance_decomposition.
# This may be replaced when dependencies are built.
