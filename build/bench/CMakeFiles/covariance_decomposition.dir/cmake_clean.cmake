file(REMOVE_RECURSE
  "CMakeFiles/covariance_decomposition.dir/covariance_decomposition.cpp.o"
  "CMakeFiles/covariance_decomposition.dir/covariance_decomposition.cpp.o.d"
  "covariance_decomposition"
  "covariance_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covariance_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
