# Empty dependencies file for procedure_validity.
# This may be replaced when dependencies are built.
