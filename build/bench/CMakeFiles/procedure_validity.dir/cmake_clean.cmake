file(REMOVE_RECURSE
  "CMakeFiles/procedure_validity.dir/procedure_validity.cpp.o"
  "CMakeFiles/procedure_validity.dir/procedure_validity.cpp.o.d"
  "procedure_validity"
  "procedure_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procedure_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
