# Empty compiler generated dependencies file for table2_trial_vs_field.
# This may be replaced when dependencies are built.
