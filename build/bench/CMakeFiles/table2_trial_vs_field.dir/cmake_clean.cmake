file(REMOVE_RECURSE
  "CMakeFiles/table2_trial_vs_field.dir/table2_trial_vs_field.cpp.o"
  "CMakeFiles/table2_trial_vs_field.dir/table2_trial_vs_field.cpp.o.d"
  "table2_trial_vs_field"
  "table2_trial_vs_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_trial_vs_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
