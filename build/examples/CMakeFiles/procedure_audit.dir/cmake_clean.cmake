file(REMOVE_RECURSE
  "CMakeFiles/procedure_audit.dir/procedure_audit.cpp.o"
  "CMakeFiles/procedure_audit.dir/procedure_audit.cpp.o.d"
  "procedure_audit"
  "procedure_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procedure_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
