# Empty compiler generated dependencies file for procedure_audit.
# This may be replaced when dependencies are built.
