file(REMOVE_RECURSE
  "CMakeFiles/design_improvement.dir/design_improvement.cpp.o"
  "CMakeFiles/design_improvement.dir/design_improvement.cpp.o.d"
  "design_improvement"
  "design_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
