# Empty dependencies file for design_improvement.
# This may be replaced when dependencies are built.
