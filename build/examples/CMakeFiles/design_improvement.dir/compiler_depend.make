# Empty compiler generated dependencies file for design_improvement.
# This may be replaced when dependencies are built.
