file(REMOVE_RECURSE
  "CMakeFiles/programme_planning.dir/programme_planning.cpp.o"
  "CMakeFiles/programme_planning.dir/programme_planning.cpp.o.d"
  "programme_planning"
  "programme_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/programme_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
