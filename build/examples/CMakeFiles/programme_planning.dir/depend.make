# Empty dependencies file for programme_planning.
# This may be replaced when dependencies are built.
