# Empty compiler generated dependencies file for trial_to_field.
# This may be replaced when dependencies are built.
