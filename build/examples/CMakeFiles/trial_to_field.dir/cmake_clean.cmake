file(REMOVE_RECURSE
  "CMakeFiles/trial_to_field.dir/trial_to_field.cpp.o"
  "CMakeFiles/trial_to_field.dir/trial_to_field.cpp.o.d"
  "trial_to_field"
  "trial_to_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trial_to_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
