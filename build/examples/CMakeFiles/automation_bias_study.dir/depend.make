# Empty dependencies file for automation_bias_study.
# This may be replaced when dependencies are built.
