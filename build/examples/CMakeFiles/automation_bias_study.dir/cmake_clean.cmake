file(REMOVE_RECURSE
  "CMakeFiles/automation_bias_study.dir/automation_bias_study.cpp.o"
  "CMakeFiles/automation_bias_study.dir/automation_bias_study.cpp.o.d"
  "automation_bias_study"
  "automation_bias_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automation_bias_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
