// Scenario: you ran a controlled trial of a computer-aided detection tool
// with an enriched case mix, and must now predict field performance —
// including the uncertainty your finite trial leaves you with (Section 5 of
// the paper, minus its "assume narrow confidence intervals" shortcut).
//
// Pipeline: simulate the trial -> fit the model with intervals -> Eq.-(8)
// extrapolation to the field profile -> posterior predictive interval via
// Monte-Carlo over the parameter posteriors -> scenario analysis for the
// paper's "indirect effects" (reader drift).
#include <iostream>

#include "core/extrapolation.hpp"
#include "core/paper_example.hpp"
#include "core/uncertainty.hpp"
#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/estimation.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  // The "real world" we pretend not to know: the paper's parameters.
  const auto truth = core::paper::example_model();
  const auto trial_profile = core::paper::trial_profile();
  const auto field_profile = core::paper::field_profile();

  // 1. Run a 3000-case controlled trial (enriched 80/20 mix).
  sim::TabularWorld world(truth, trial_profile);
  sim::TrialRunner runner(world, 3000);
  stats::Rng rng(20260707);
  const auto data = runner.run(rng);
  std::cout << "Trial: " << data.records.size() << " cancer cases, observed "
            << "system failure rate "
            << fixed(data.observed_failure_rate(), 3) << "\n\n";

  // 2. Fit the clear-box model.
  const auto estimate = sim::estimate_sequential_model(data);
  const auto fitted = estimate.fitted_model();
  report::Table params({"class", "PMf [95% CI]", "PHf|Mf [95% CI]",
                        "PHf|Ms [95% CI]"});
  params.caption("Fitted class-conditional parameters");
  for (std::size_t x = 0; x < estimate.classes.size(); ++x) {
    const auto& e = estimate.classes[x];
    params.row({estimate.class_names[x],
                report::with_interval(e.p_machine_fails,
                                      e.machine_interval.lower,
                                      e.machine_interval.upper),
                report::with_interval(e.p_human_fails_given_machine_fails,
                                      e.human_given_failure_interval.lower,
                                      e.human_given_failure_interval.upper),
                report::with_interval(e.p_human_fails_given_machine_succeeds,
                                      e.human_given_success_interval.lower,
                                      e.human_given_success_interval.upper)});
  }
  std::cout << params << '\n';

  // 3. Point extrapolation to the field mix.
  core::Extrapolator extrapolator(fitted, trial_profile);
  std::cout << "Point prediction for the field (Eq. 8): "
            << fixed(extrapolator.predict_for_profile(field_profile), 3)
            << "  (true value "
            << fixed(truth.system_failure_probability(field_profile), 3)
            << ")\n";

  // 4. How much does the finite trial limit you? Propagate the posteriors.
  core::PosteriorModelSampler sampler(estimate.class_names, estimate.counts());
  stats::Rng posterior_rng(7);
  const auto prediction =
      sampler.predict(field_profile, posterior_rng, 5000);
  std::cout << "Posterior predictive (95% credible): "
            << report::with_interval(prediction.mean, prediction.lower,
                                     prediction.upper)
            << "\n\n";

  // 5. Scenario analysis: the paper's Section-5 list of what may change.
  std::vector<core::Scenario> scenarios;
  scenarios.push_back({"as trialled", std::nullopt, 1.0, 1.0, {}});
  scenarios.push_back({"field mix", field_profile, 1.0, 1.0, {}});
  scenarios.push_back(
      {"field + readers 20% worse (complacency)", field_profile, 1.2, 1.0, {}});
  scenarios.push_back(
      {"field + readers 20% better (training)", field_profile, 0.8, 1.0, {}});
  scenarios.push_back(
      {"field + machine 2x better everywhere", field_profile, 1.0, 0.5, {}});
  const auto results = extrapolator.evaluate_all(scenarios);
  report::Table table({"scenario", "PHf", "floor E[PHf|Ms]"});
  table.caption("Scenario analysis");
  for (const auto& r : results) {
    table.row({r.name, fixed(r.system_failure, 3),
               fixed(r.failure_floor, 3)});
  }
  std::cout << table << '\n';

  const auto [lo, hi] =
      extrapolator.predict_range_for_reader_drift(field_profile, 0.8, 1.3);
  std::cout << "Field prediction under reader drift in [0.8x, 1.3x]: ["
            << fixed(lo, 3) << ", " << fixed(hi, 3) << "]\n";
  return 0;
}
