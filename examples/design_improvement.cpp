// Scenario: you own the CADT roadmap. Engineering proposes three projects;
// each reduces the machine's false-negative probability somewhere. Which
// one should ship first?
//
// The paper's answer (Sections 5–6): don't rank by machine-level gain.
// System-level gain of improving class x is p(x) · t(x) · ΔPMf(x) — the
// importance index t(x) decides whether the human will actually convert
// machine correctness into system correctness. This example reproduces that
// reasoning with the DesignAdvisor, then stress-tests the winning choice
// against reader drift.
#include <iostream>

#include "core/design_advisor.hpp"
#include "core/paper_example.hpp"
#include "core/sensitivity.hpp"
#include "report/format.hpp"
#include "report/table.hpp"

int main() {
  using namespace hmdiv::core;
  using hmdiv::report::fixed;
  using hmdiv::report::percent;

  const auto model = paper::example_model();
  const auto field = paper::field_profile();
  DesignAdvisor advisor(model, field);

  std::cout << "Baseline field failure probability: "
            << fixed(model.system_failure_probability(field), 3) << "\n\n";

  // Where is the leverage? Exact gradients of Eq. (8).
  const auto grads = sensitivities(model, field);
  hmdiv::report::Table gradient_table(
      {"class", "dPHf/dPMf", "dPHf/dPHf|Mf", "dPHf/dPHf|Ms"});
  gradient_table.caption("Sensitivities (what a unit of improvement buys)");
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    gradient_table.row({model.class_names()[x],
                        fixed(grads[x].d_machine_failure, 3),
                        fixed(grads[x].d_human_given_failure, 3),
                        fixed(grads[x].d_human_given_success, 3)});
  }
  std::cout << gradient_table << '\n';

  // The three candidate projects.
  std::vector<ImprovementCandidate> candidates;
  candidates.push_back({"A: 10x fewer misses on easy cases (cheap)",
                        paper::kEasy, 0.1});
  candidates.push_back({"B: 10x fewer misses on difficult cases (hard)",
                        paper::kDifficult, 0.1});
  candidates.push_back({"C: 2x fewer misses everywhere (moderate)",
                        ImprovementCandidate::kAllClasses, 0.5});
  const auto ranked = advisor.rank(candidates);

  hmdiv::report::Table ranking({"project", "PHf after", "abs. gain",
                                "rel. gain"});
  ranking.caption("Projects ranked by system-level gain (field profile)");
  for (const auto& e : ranked) {
    ranking.row({e.name, fixed(e.improved_failure, 3),
                 fixed(e.absolute_gain(), 4), percent(e.relative_gain(), 1)});
  }
  std::cout << ranking << '\n';

  const auto diagnosis = advisor.diagnose();
  std::cout
      << "Why: t(easy) = " << fixed(model.importance_index(paper::kEasy), 2)
      << " — readers barely react to machine output on easy cases, so\n"
      << "project A buys almost nothing even though easy cases are 90% of\n"
      << "the field. t(difficult) = "
      << fixed(model.importance_index(paper::kDifficult), 2)
      << ": that is where machine correctness converts into recalls.\n"
      << "And no machine project can push PHf below the floor "
      << fixed(diagnosis.floor, 3) << " — "
      << percent(1.0 - diagnosis.machine_addressable_fraction, 0)
      << " of today's failures need *reader-side* work instead.\n\n";

  // Stress test the winner: does the ranking survive if readers get more
  // complacent as the machine improves (the paper's indirect effect)?
  hmdiv::report::Table stress({"reader drift", "gain of B", "gain of A"});
  stress.caption("Ranking robustness under reader drift");
  for (const double drift : {1.0, 1.1, 1.2}) {
    const auto drifted = model.with_reader_improvement(drift);
    DesignAdvisor drifted_advisor(drifted, field);
    const double gain_b =
        drifted_advisor
            .evaluate({"B", paper::kDifficult, 0.1})
            .absolute_gain();
    const double gain_a =
        drifted_advisor.evaluate({"A", paper::kEasy, 0.1}).absolute_gain();
    stress.row({fixed(drift, 1) + "x", fixed(gain_b, 4), fixed(gain_a, 4)});
  }
  std::cout << stress << '\n'
            << "Project B stays the right choice across the drift range.\n";
  return 0;
}
