// Scenario: a screening programme director must pick a reading policy for
// next year. Budget pressure says fewer reader-hours; quality targets say
// sensitivity must not drop. The candidates are the paper's Conclusions
// list: single reading, reader + CADT, double reading (with/without
// arbitration), two readers + CADT, and CADT-assisted less-qualified
// readers.
//
// The example simulates each policy over the same population (0.7% cancer
// prevalence), reports quality + workload + cost, and prints a shortlist
// that dominates on the sensitivity-per-cost frontier.
#include <algorithm>
#include <iostream>

#include "report/format.hpp"
#include "report/table.hpp"
#include "screening/policies.hpp"
#include "screening/population.hpp"
#include "screening/programme.hpp"
#include "sim/feature_world.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  const auto world = sim::reference_feature_world();
  auto population = screening::PopulationGenerator::reference(0.007);

  screening::CostModel costs;
  costs.cost_per_reading = 1.0;       // reader-minutes, normalised
  costs.cost_per_recall = 25.0;       // assessment clinic
  costs.cost_per_missed_cancer = 800.0;
  costs.cost_per_case_cadt = 0.15;

  auto policies = screening::standard_policies(world.reader(), world.cadt(),
                                               /*low_skill_factor=*/0.6);
  stats::Rng rng(2027);
  const auto results =
      screening::compare_policies(population, policies, 200000, costs, rng);

  report::Table table({"policy", "sensitivity", "specificity", "recall rate",
                       "reads/case", "cost/case"});
  table.caption("Candidate policies, 200k screened cases");
  for (const auto& r : results) {
    table.row({r.policy_name, fixed(r.metrics.sensitivity, 3),
               fixed(r.metrics.specificity, 3),
               report::percent(r.metrics.recall_rate, 2),
               fixed(r.metrics.readings_per_case, 2),
               fixed(r.cost_per_case, 2)});
  }
  std::cout << table << '\n';

  // Frontier: policies not dominated in (sensitivity up, cost down).
  std::vector<const screening::ProgrammeResult*> frontier;
  for (const auto& candidate : results) {
    const bool dominated = std::any_of(
        results.begin(), results.end(),
        [&](const screening::ProgrammeResult& other) {
          return (other.metrics.sensitivity > candidate.metrics.sensitivity &&
                  other.cost_per_case <= candidate.cost_per_case) ||
                 (other.metrics.sensitivity >= candidate.metrics.sensitivity &&
                  other.cost_per_case < candidate.cost_per_case);
        });
    if (!dominated) frontier.push_back(&candidate);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const auto* a, const auto* b) {
              return a->cost_per_case < b->cost_per_case;
            });
  std::cout << "Sensitivity/cost frontier (cheapest first):\n";
  for (const auto* r : frontier) {
    std::cout << "  - " << r->policy_name << ": sensitivity "
              << fixed(r->metrics.sensitivity, 3) << " at cost/case "
              << fixed(r->cost_per_case, 2) << '\n';
  }

  std::cout
      << "\nNotes for the board:\n"
         "  * CADT policies trade specificity (more recalls of healthy\n"
         "    women) for sensitivity — the FN/FP trade-off the paper's\n"
         "    Conclusions flag; tune the machine threshold before deciding.\n"
         "  * Two readers sharing one CADT are NOT independent: the shared\n"
         "    machine correlates their failures (see the\n"
         "    programme_comparison bench for the size of that effect).\n";
  return 0;
}
