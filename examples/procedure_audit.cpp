// Scenario: your screening centre *believes* its readers follow the
// intended procedure — examine the films first, then review every CADT
// prompt with full attention (the paper's procedure 1). Before trusting
// the convenient parallel-detection model (Fig. 2) for assessment, audit
// that belief with an instrumented trial: readers record their unaided
// findings before the prompts are revealed.
//
// The audit below runs two instrumented trials on simulated reader
// populations — one compliant, one that skims prompts — and applies three
// checks an analyst can run on real data:
//   1. prompt-blindness: pHmiss must not change when the CADT changes;
//   2. reconstruction: Eq. (1) on the fitted parameters must reproduce the
//      observed system failure rate;
//   3. recovered-miss rate: among cases missed unaided but prompted, the
//      detection rate estimates the effective prompt attention directly.
#include <cmath>
#include <iostream>

#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/feature_world.hpp"
#include "sim/parallel_world.hpp"

namespace {

using namespace hmdiv;

struct AuditResult {
  double phmiss_shift = 0.0;       // check 1: |pHmiss(eager) − pHmiss(strict)|
  double reconstruction_gap = 0.0; // check 2: observed − Eq. (1)
  double effective_attention = 0.0;// check 3
};

AuditResult audit(double true_attention, std::uint64_t seed) {
  const auto base = sim::reference_feature_world();
  const core::DemandProfile profile({"easy", "difficult"}, {0.8, 0.2});
  constexpr std::uint64_t kCases = 120000;

  auto run = [&](const sim::CadtModel& cadt, std::uint64_t s) {
    sim::ParallelProcedureWorld world(base.generator().with_profile(profile),
                                      cadt, base.reader(), true_attention,
                                      /*within_class_scale=*/0.0);
    stats::Rng rng(s);
    return world.run(kCases, rng);
  };
  const auto eager_records = run(base.cadt().with_threshold_shift(-1.0), seed);
  const auto strict_records =
      run(base.cadt().with_threshold_shift(1.0), seed + 1);
  const auto eager =
      sim::estimate_parallel_model(eager_records, profile.class_names());
  const auto strict =
      sim::estimate_parallel_model(strict_records, profile.class_names());

  AuditResult out;
  // Check 1: unaided misses should be machine-invariant.
  for (std::size_t x = 0; x < 2; ++x) {
    out.phmiss_shift = std::max(
        out.phmiss_shift, std::fabs(eager.classes[x].p_human_misses -
                                    strict.classes[x].p_human_misses));
  }
  // Check 2: does the idealised Eq. (1) reproduce what happened?
  out.reconstruction_gap =
      eager.observed_system_failure -
      eager.fitted_model().system_failure_probability(profile);
  // Check 3: detection rate among (missed unaided, prompted) cases.
  std::uint64_t recovered = 0, opportunities = 0;
  for (const auto& r : eager_records) {
    if (r.human_missed && !r.machine_failed) {
      ++opportunities;
      recovered += r.detected ? 1 : 0;
    }
  }
  out.effective_attention =
      opportunities == 0 ? 0.0
                         : static_cast<double>(recovered) /
                               static_cast<double>(opportunities);
  return out;
}

}  // namespace

int main() {
  using report::fixed;

  hmdiv::report::Table table({"reader population", "max pHmiss shift",
                              "Eq.(1) reconstruction gap",
                              "effective prompt attention"});
  table.caption("Procedure audit on two instrumented trials");
  const AuditResult compliant = audit(1.0, 60001);
  const AuditResult skimmers = audit(0.65, 60010);
  table.row({"compliant (attention = 1.0)", fixed(compliant.phmiss_shift, 4),
             fixed(compliant.reconstruction_gap, 4),
             fixed(compliant.effective_attention, 3)});
  table.row({"prompt-skimmers (attention = 0.65)",
             fixed(skimmers.phmiss_shift, 4),
             fixed(skimmers.reconstruction_gap, 4),
             fixed(skimmers.effective_attention, 3)});
  std::cout << table << '\n';

  std::cout
      << "Verdict for the compliant centre: pHmiss is machine-invariant,\n"
         "Eq. (1) reconstructs the observed failure rate, and prompted\n"
         "misses are always examined — the parallel-detection model is\n"
         "safe to use for assessment here.\n\n"
         "Verdict for the skimming centre: the reconstruction gap of "
      << fixed(skimmers.reconstruction_gap, 3)
      << "\n(observed worse than modelled) and the measured attention of "
      << fixed(skimmers.effective_attention, 2)
      << "\nshow the procedure is not followed; fall back to the sequential\n"
         "model (Section 4), which needs no such assumption.\n";
  return 0;
}
