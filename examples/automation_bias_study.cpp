// Scenario: a human-factors study of automation bias (the paper's ref. [7],
// Skitka et al.) run entirely in the mechanistic simulator: how does a
// reader's *reliance* on the prompting machine reshape the system's
// conditional failure structure?
//
// We sweep fixed reliance levels, extract the emergent {PMf, PHf|Mf,
// PHf|Ms} per class, and watch the paper's quantities respond: the floor
// PHf|Ms stays put (prompts always get attention), PHf|Mf climbs (silent
// cases get skipped), so t(x) — how much the machine's failures hurt —
// grows with reliance. Then we find the reliance level beyond which the
// CADT stops paying for itself against an unaided vigilant reader.
#include <iostream>

#include "report/format.hpp"
#include "report/table.hpp"
#include "sim/feature_world.hpp"
#include "sim/ground_truth.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace hmdiv;
  using report::fixed;

  const auto base = sim::reference_feature_world();
  const core::DemandProfile field({"easy", "difficult"}, {0.9, 0.1});

  // Unaided baseline: a vigilant reader with no CADT in the loop behaves
  // like "never prompted, zero reliance".
  auto unaided_reader = base.reader().with_reliance(0.0);
  stats::Rng baseline_rng(1);
  double unaided_failure = 0.0;
  {
    auto generator = base.generator().with_profile(field);
    stats::KahanAccumulator acc;
    constexpr std::size_t kSamples = 200000;
    for (std::size_t i = 0; i < kSamples; ++i) {
      const auto demand = generator.generate(baseline_rng);
      acc.add(unaided_reader.failure_probability(demand.human_difficulty,
                                                 /*prompted=*/false));
    }
    unaided_failure = acc.total() / kSamples;
  }
  std::cout << "Unaided vigilant reader, field mix: P(miss cancer) = "
            << fixed(unaided_failure, 3) << "\n\n";

  // Study machine: a stricter operating point than the reference CADT
  // (fewer false-positive prompts, but it misses far more cancers), so the
  // cost of displaced vigilance is visible within the sweep.
  const auto study_cadt = base.cadt().with_threshold_shift(1.2);

  report::Table sweep({"reliance", "PMf(diff)", "PHf|Mf(easy)",
                       "PHf|Ms(easy)", "t(easy)", "t(diff)",
                       "system PHf (field)"});
  sweep.caption("Reliance sweep (emergent parameters and Eq. 8)");
  double crossover = -1.0;
  for (const double reliance :
       {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    sim::FeatureWorld world(base.generator().with_profile(field), study_cadt,
                            base.reader().with_reliance(reliance));
    stats::Rng rng(42);  // same difficulty sample for every reliance level
    const auto truth = sim::ground_truth_model(world, rng, 120000);
    const double system_failure = truth.system_failure_probability(field);
    sweep.row({fixed(reliance, 1),
               fixed(truth.parameters(1).p_machine_fails, 3),
               fixed(truth.parameters(0).p_human_fails_given_machine_fails, 3),
               fixed(truth.parameters(0).p_human_fails_given_machine_succeeds,
                     3),
               fixed(truth.importance_index(0), 3),
               fixed(truth.importance_index(1), 3),
               fixed(system_failure, 3)});
    if (crossover < 0.0 && system_failure > unaided_failure) {
      crossover = reliance;
    }
  }
  std::cout << sweep << '\n';

  if (crossover >= 0.0) {
    std::cout
        << "At reliance >= " << fixed(crossover, 1)
        << " the reader-plus-CADT system misses MORE cancers than the\n"
        << "unaided vigilant reader: the machine's help on prompted cases\n"
        << "no longer covers the vigilance it displaced. This is the\n"
        << "automation-bias failure mode the paper's Section 5 items 3-4\n"
        << "warn extrapolations about.\n";
  } else {
    std::cout << "Within this sweep the CADT always paid for itself; raise\n"
                 "the reliance ceiling to find the crossover.\n";
  }
  return 0;
}
