// Quickstart: model a human + advisory-machine system in five minutes.
//
// You have (or estimate) three numbers per class of cases:
//   PMf(x)    — how often the machine's advice is wrong on that class,
//   PHf|Mf(x) — how often the human (and thus the system) fails when the
//               machine's advice was wrong,
//   PHf|Ms(x) — ditto when the advice was right,
// plus the class mix p(x) of your environment. That is the whole model.
//
// Build it, evaluate it, and ask the two questions the paper says matter:
// what's the failure floor no machine improvement can beat, and which class
// of cases is worth improving the machine on?
#include <iostream>

#include "core/demand_profile.hpp"
#include "core/design_advisor.hpp"
#include "core/sequential_model.hpp"
#include "report/format.hpp"

int main() {
  using namespace hmdiv::core;
  using hmdiv::report::fixed;
  using hmdiv::report::percent;

  // 1. Describe the classes of cases and how the human responds to the
  //    machine on each. (Values from the paper's Section-5 example.)
  ClassConditional easy;
  easy.p_machine_fails = 0.07;
  easy.p_human_fails_given_machine_fails = 0.18;
  easy.p_human_fails_given_machine_succeeds = 0.14;

  ClassConditional difficult;
  difficult.p_machine_fails = 0.41;
  difficult.p_human_fails_given_machine_fails = 0.90;
  difficult.p_human_fails_given_machine_succeeds = 0.40;

  const SequentialModel model({"easy", "difficult"}, {easy, difficult});

  // 2. Describe the environment: how often each class occurs.
  const DemandProfile field({"easy", "difficult"}, {0.9, 0.1});

  // 3. Evaluate (Eq. 8 of the paper).
  std::cout << "System failure probability in the field: "
            << fixed(model.system_failure_probability(field), 3) << "\n";

  // 4. The importance index t(x) says how much the machine's output sways
  //    the human on each class (slope of the Fig. 4 line).
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    std::cout << "  t(" << model.class_names()[x]
              << ") = " << fixed(model.importance_index(x), 2) << "\n";
  }

  // 5. The floor: even a perfect machine leaves E[PHf|Ms] of failures.
  std::cout << "Failure floor (perfect machine): "
            << fixed(model.failure_floor(field), 3) << "\n";

  // 6. Ask the design advisor where machine improvement actually pays.
  DesignAdvisor advisor(model, field);
  const auto diagnosis = advisor.diagnose();
  std::cout << "Machine-addressable fraction of failures: "
            << percent(diagnosis.machine_addressable_fraction, 1) << "\n"
            << "Best class to improve the machine on: "
            << model.class_names()[advisor.best_target_class()]
            << " (despite being the rarer class!)\n";
  return 0;
}
