// Unit tests for stats/hypothesis.hpp.
#include "stats/hypothesis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace hmdiv::stats {
namespace {

TEST(TwoProportionZ, EqualProportionsGiveHighPValue) {
  const auto r = two_proportion_z_test(30, 100, 60, 200);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
}

TEST(TwoProportionZ, LargeDifferenceIsSignificant) {
  const auto r = two_proportion_z_test(80, 100, 20, 100);
  EXPECT_GT(std::fabs(r.statistic), 5.0);
  EXPECT_LT(r.p_value, 1e-8);
}

TEST(TwoProportionZ, DegenerateePooledVariance) {
  const auto r = two_proportion_z_test(0, 50, 0, 50);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(TwoProportionZ, RejectsBadCounts) {
  EXPECT_THROW(two_proportion_z_test(1, 0, 1, 2), std::invalid_argument);
  EXPECT_THROW(two_proportion_z_test(3, 2, 1, 2), std::invalid_argument);
}

TEST(ChiSquareSf, KnownValues) {
  // Chi-square with 1 dof: P(X >= 3.841) ~ 0.05.
  EXPECT_NEAR(chi_square_sf(3.841459, 1.0), 0.05, 1e-5);
  // 2 dof: survival = exp(-x/2).
  EXPECT_NEAR(chi_square_sf(4.0, 2.0), std::exp(-2.0), 1e-10);
  EXPECT_EQ(chi_square_sf(0.0, 3.0), 1.0);
  EXPECT_THROW(chi_square_sf(1.0, 0.0), std::invalid_argument);
}

TEST(ChiSquareGof, PerfectFitHasHighPValue) {
  const std::vector<std::uint64_t> observed{800, 200};
  const std::vector<double> expected{0.8, 0.2};
  const auto r = chi_square_goodness_of_fit(observed, expected);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
}

TEST(ChiSquareGof, DetectsWrongProfile) {
  const std::vector<std::uint64_t> observed{500, 500};
  const std::vector<double> expected{0.8, 0.2};
  const auto r = chi_square_goodness_of_fit(observed, expected);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ChiSquareGof, UniformUnderNull) {
  // p-values under the null should not be systematically tiny.
  Rng rng(321);
  const std::vector<double> expected{0.5, 0.3, 0.2};
  int rejections = 0;
  const int replicates = 500;
  for (int r = 0; r < replicates; ++r) {
    std::vector<std::uint64_t> observed(3, 0);
    for (int i = 0; i < 300; ++i) ++observed[rng.discrete(expected)];
    if (chi_square_goodness_of_fit(observed, expected).p_value < 0.05) {
      ++rejections;
    }
  }
  // Expect about 5% rejections; allow generous slack.
  EXPECT_LT(rejections, replicates / 10);
}

TEST(ChiSquareGof, RejectsBadInput) {
  const std::vector<std::uint64_t> one_cell{10};
  const std::vector<double> one_prob{1.0};
  EXPECT_THROW(chi_square_goodness_of_fit(one_cell, one_prob),
               std::invalid_argument);
  const std::vector<std::uint64_t> empty_counts{0, 0};
  const std::vector<double> probs{0.5, 0.5};
  EXPECT_THROW(chi_square_goodness_of_fit(empty_counts, probs),
               std::invalid_argument);
}

TEST(ChiSquare2x2, IndependentTableHasHighPValue) {
  // Rows proportional: no association.
  const auto r = chi_square_independence_2x2(20, 80, 10, 40);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
}

TEST(ChiSquare2x2, DetectsAssociation) {
  const auto r = chi_square_independence_2x2(90, 10, 10, 90);
  EXPECT_GT(r.statistic, 100.0);
  EXPECT_LT(r.p_value, 1e-12);
}

TEST(ChiSquare2x2, DegenerateMarginsGiveNoEvidence) {
  const auto r = chi_square_independence_2x2(0, 0, 10, 20);
  EXPECT_EQ(r.p_value, 1.0);
  EXPECT_THROW(chi_square_independence_2x2(0, 0, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::stats
