// Unit + property tests for rbd/structure.hpp.
#include "rbd/structure.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace hmdiv::rbd {
namespace {

std::vector<bool> states(std::initializer_list<int> bits) {
  std::vector<bool> out;
  for (const int b : bits) out.push_back(b != 0);
  return out;
}

// std::vector<bool> cannot back a std::span<const bool>; use a plain array.
bool eval(const Structure& s, std::initializer_list<int> bits) {
  bool buffer[16];
  std::size_t i = 0;
  for (const int b : bits) buffer[i++] = b != 0;
  return s.evaluate(std::span<const bool>(buffer, i));
}

TEST(Structure, ComponentIsIdentity) {
  const auto s = Structure::component(0);
  EXPECT_TRUE(eval(s, {1}));
  EXPECT_FALSE(eval(s, {0}));
  EXPECT_EQ(s.component_count(), 1u);
}

TEST(Structure, SeriesRequiresAll) {
  const auto s = Structure::series(
      {Structure::component(0), Structure::component(1)});
  EXPECT_TRUE(eval(s, {1, 1}));
  EXPECT_FALSE(eval(s, {1, 0}));
  EXPECT_FALSE(eval(s, {0, 1}));
  EXPECT_FALSE(eval(s, {0, 0}));
}

TEST(Structure, AnyOfRequiresOne) {
  const auto s =
      Structure::any_of({Structure::component(0), Structure::component(1)});
  EXPECT_TRUE(eval(s, {1, 0}));
  EXPECT_TRUE(eval(s, {0, 1}));
  EXPECT_FALSE(eval(s, {0, 0}));
}

TEST(Structure, KOutOfNThreshold) {
  const auto s = Structure::k_out_of_n(
      2, {Structure::component(0), Structure::component(1),
          Structure::component(2)});
  EXPECT_TRUE(eval(s, {1, 1, 0}));
  EXPECT_TRUE(eval(s, {1, 1, 1}));
  EXPECT_FALSE(eval(s, {1, 0, 0}));
}

TEST(Structure, CombinatorsValidate) {
  EXPECT_THROW(Structure::series({}), std::invalid_argument);
  EXPECT_THROW(Structure::any_of({}), std::invalid_argument);
  EXPECT_THROW(Structure::k_out_of_n(0, {Structure::component(0)}),
               std::invalid_argument);
  EXPECT_THROW(
      Structure::k_out_of_n(3, {Structure::component(0),
                                Structure::component(1)}),
      std::invalid_argument);
}

TEST(Structure, EvaluateRejectsShortStateVector) {
  const auto s = Structure::series(
      {Structure::component(0), Structure::component(3)});
  EXPECT_EQ(s.component_count(), 4u);
  const auto short_states = states({1, 1});
  bool buffer[2] = {true, true};
  EXPECT_THROW(
      static_cast<void>(s.evaluate(std::span<const bool>(buffer, 2))),
      std::invalid_argument);
  static_cast<void>(short_states);
}

TEST(Structure, SeriesProbabilityMultiplies) {
  const auto s = Structure::series(
      {Structure::component(0), Structure::component(1)});
  const std::vector<double> p{0.9, 0.8};
  EXPECT_NEAR(s.success_probability(p), 0.72, 1e-12);
}

TEST(Structure, ParallelProbabilityComplement) {
  const auto s =
      Structure::any_of({Structure::component(0), Structure::component(1)});
  const std::vector<double> p{0.9, 0.8};
  EXPECT_NEAR(s.success_probability(p), 1.0 - 0.1 * 0.2, 1e-12);
}

TEST(Structure, TwoOutOfThreeClosedForm) {
  const auto s = Structure::k_out_of_n(
      2, {Structure::component(0), Structure::component(1),
          Structure::component(2)});
  const double p = 0.9;
  const std::vector<double> probs{p, p, p};
  const double expected = 3.0 * p * p * (1.0 - p) + p * p * p;
  EXPECT_NEAR(s.success_probability(probs), expected, 1e-12);
}

TEST(Structure, Figure2ShapeMatchesEquation1) {
  // series(any_of(machine, human-detect), human-classify), Eq. (1) with
  // conditional independence.
  const auto s = Structure::series(
      {Structure::any_of(
           {Structure::component(0), Structure::component(1)}),
       Structure::component(2)});
  const double p_mf = 0.07, p_hmiss = 0.2, p_hmisclass = 0.1;
  const std::vector<double> success{1.0 - p_mf, 1.0 - p_hmiss,
                                    1.0 - p_hmisclass};
  const double detection_failure = p_mf * p_hmiss;
  const double expected_failure =
      detection_failure + (1.0 - detection_failure) * p_hmisclass;
  EXPECT_NEAR(1.0 - s.success_probability(success), expected_failure, 1e-12);
}

TEST(Structure, ProbabilityValidatesInput) {
  const auto s = Structure::component(1);
  const std::vector<double> short_p{0.5};
  const std::vector<double> bad_p{0.5, 1.5};
  EXPECT_THROW(static_cast<void>(s.success_probability(short_p)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(s.success_probability(bad_p)),
               std::invalid_argument);
}

TEST(Structure, SharedComponentsDetected) {
  const auto shared = Structure::any_of(
      {Structure::series({Structure::component(0), Structure::component(1)}),
       Structure::series({Structure::component(0), Structure::component(2)})});
  EXPECT_TRUE(shared.has_shared_components());
  const auto distinct = Structure::series(
      {Structure::component(0), Structure::component(1)});
  EXPECT_FALSE(distinct.has_shared_components());
}

TEST(Structure, EnumerationExactForSharedComponents) {
  // Bridge-like structure with a shared component: formula would double
  // count; enumeration must give P = P(c0)·(1 − (1−P(c1))(1−P(c2))).
  const auto shared = Structure::any_of(
      {Structure::series({Structure::component(0), Structure::component(1)}),
       Structure::series({Structure::component(0), Structure::component(2)})});
  const std::vector<double> p{0.5, 0.6, 0.7};
  const double expected = 0.5 * (1.0 - 0.4 * 0.3);
  EXPECT_NEAR(shared.success_by_enumeration(p), expected, 1e-12);
}

TEST(Structure, EnumerationRejectsTooManyComponents) {
  const auto s = Structure::component(24);  // 25 components
  const std::vector<double> p(25, 0.5);
  EXPECT_THROW(static_cast<void>(s.success_by_enumeration(p)),
               std::invalid_argument);
}

TEST(Structure, ToStringDescribesShape) {
  const auto s = Structure::series(
      {Structure::any_of(
           {Structure::component(0), Structure::component(1)}),
       Structure::component(2)});
  EXPECT_EQ(s.to_string(), "series(any_of(c0, c1), c2)");
  const auto k = Structure::k_out_of_n(
      2, {Structure::component(0), Structure::component(1),
          Structure::component(2)});
  EXPECT_EQ(k.to_string(), "2_of_3(c0, c1, c2)");
}

/// Property: for random structures without shared components, the recursive
/// formula and exhaustive enumeration agree.
class RandomStructure : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomStructure, FormulaMatchesEnumeration) {
  stats::Rng rng(GetParam());
  // Build a random 3-level structure over 6 distinct components.
  std::size_t next_component = 0;
  auto leaf = [&]() { return Structure::component(next_component++); };
  auto random_group = [&](auto make_child) {
    std::vector<Structure> children;
    const std::size_t n = 2 + rng.uniform_index(2);
    for (std::size_t i = 0; i < n; ++i) children.push_back(make_child());
    const auto choice = rng.uniform_index(3);
    if (choice == 0) return Structure::series(std::move(children));
    if (choice == 1) return Structure::any_of(std::move(children));
    const std::size_t k = 1 + rng.uniform_index(n);
    return Structure::k_out_of_n(k, std::move(children));
  };
  const Structure s = random_group([&] { return random_group(leaf); });
  ASSERT_FALSE(s.has_shared_components());
  std::vector<double> p(s.component_count());
  for (double& v : p) v = rng.uniform();
  EXPECT_NEAR(s.success_probability(p), s.success_by_enumeration(p), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStructure,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace hmdiv::rbd
