// Unit + property tests for stats/distributions.hpp.
#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace hmdiv::stats {
namespace {

TEST(Binomial, PmfSumsToOne) {
  for (const double p : {0.0, 0.2, 0.5, 0.97, 1.0}) {
    double total = 0.0;
    for (std::uint64_t k = 0; k <= 30; ++k) total += binomial_pmf(30, p, k);
    EXPECT_NEAR(total, 1.0, 1e-12) << p;
  }
}

TEST(Binomial, PmfKnownValues) {
  EXPECT_NEAR(binomial_pmf(4, 0.5, 2), 0.375, 1e-12);
  EXPECT_NEAR(binomial_pmf(10, 0.1, 0), std::pow(0.9, 10), 1e-12);
  EXPECT_EQ(binomial_pmf(5, 0.3, 6), 0.0);
}

TEST(Binomial, CdfMatchesPmfSum) {
  const std::uint64_t n = 25;
  const double p = 0.37;
  double running = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    running += binomial_pmf(n, p, k);
    EXPECT_NEAR(binomial_cdf(n, p, k), running, 1e-10) << k;
  }
  EXPECT_EQ(binomial_cdf(n, p, n), 1.0);
}

TEST(Binomial, RejectsBadProbability) {
  EXPECT_THROW(binomial_pmf(5, -0.1, 2), std::invalid_argument);
  EXPECT_THROW(binomial_cdf(5, 1.1, 2), std::invalid_argument);
}

TEST(Beta, PdfIntegratesToOne) {
  // Trapezoidal integration on interior (a,b > 1 so pdf finite at ends).
  for (const auto& [a, b] : std::vector<std::pair<double, double>>{
           {2.0, 2.0}, {3.0, 1.5}, {5.0, 8.0}}) {
    const int steps = 20000;
    double total = 0.0;
    for (int i = 0; i <= steps; ++i) {
      const double x = static_cast<double>(i) / steps;
      const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
      total += w * beta_pdf(a, b, x) / steps;
    }
    EXPECT_NEAR(total, 1.0, 1e-4) << a << "," << b;
  }
}

TEST(Beta, CdfQuantileRoundTrip) {
  for (double p = 0.05; p < 1.0; p += 0.1) {
    const double x = beta_quantile(3.0, 7.0, p);
    EXPECT_NEAR(beta_cdf(3.0, 7.0, x), p, 1e-9);
  }
}

TEST(Beta, PdfOutsideSupportIsZero) {
  EXPECT_EQ(beta_pdf(2.0, 2.0, -0.1), 0.0);
  EXPECT_EQ(beta_pdf(2.0, 2.0, 1.1), 0.0);
}

TEST(DiscreteDistribution, ValidatesInput) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({-0.1, 1.1}), std::invalid_argument);
  EXPECT_NO_THROW(DiscreteDistribution({0.8, 0.2}));
}

TEST(DiscreteDistribution, FromWeightsNormalises) {
  const auto d = DiscreteDistribution::from_weights({2.0, 6.0});
  EXPECT_NEAR(d[0], 0.25, 1e-12);
  EXPECT_NEAR(d[1], 0.75, 1e-12);
  EXPECT_THROW(DiscreteDistribution::from_weights({0.0, 0.0}),
               std::invalid_argument);
}

TEST(DiscreteDistribution, ExpectationIsWeightedAverage) {
  const DiscreteDistribution d({0.8, 0.2});
  const std::vector<double> values{0.143, 0.605};
  EXPECT_NEAR(d.expectation(values), 0.8 * 0.143 + 0.2 * 0.605, 1e-12);
  const std::vector<double> wrong_size{1.0};
  EXPECT_THROW(d.expectation(wrong_size), std::invalid_argument);
}

TEST(DiscreteDistribution, SamplingMatchesProbabilities) {
  const DiscreteDistribution d({0.1, 0.6, 0.3});
  Rng rng(99);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[d.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.6, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
}

}  // namespace
}  // namespace hmdiv::stats
