// Unit + property tests for stats/distributions.hpp.
#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace hmdiv::stats {
namespace {

TEST(Binomial, PmfSumsToOne) {
  for (const double p : {0.0, 0.2, 0.5, 0.97, 1.0}) {
    double total = 0.0;
    for (std::uint64_t k = 0; k <= 30; ++k) total += binomial_pmf(30, p, k);
    EXPECT_NEAR(total, 1.0, 1e-12) << p;
  }
}

TEST(Binomial, PmfKnownValues) {
  EXPECT_NEAR(binomial_pmf(4, 0.5, 2), 0.375, 1e-12);
  EXPECT_NEAR(binomial_pmf(10, 0.1, 0), std::pow(0.9, 10), 1e-12);
  EXPECT_EQ(binomial_pmf(5, 0.3, 6), 0.0);
}

TEST(Binomial, CdfMatchesPmfSum) {
  const std::uint64_t n = 25;
  const double p = 0.37;
  double running = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    running += binomial_pmf(n, p, k);
    EXPECT_NEAR(binomial_cdf(n, p, k), running, 1e-10) << k;
  }
  EXPECT_EQ(binomial_cdf(n, p, n), 1.0);
}

TEST(Binomial, RejectsBadProbability) {
  EXPECT_THROW(binomial_pmf(5, -0.1, 2), std::invalid_argument);
  EXPECT_THROW(binomial_cdf(5, 1.1, 2), std::invalid_argument);
}

TEST(Beta, PdfIntegratesToOne) {
  // Trapezoidal integration on interior (a,b > 1 so pdf finite at ends).
  for (const auto& [a, b] : std::vector<std::pair<double, double>>{
           {2.0, 2.0}, {3.0, 1.5}, {5.0, 8.0}}) {
    const int steps = 20000;
    double total = 0.0;
    for (int i = 0; i <= steps; ++i) {
      const double x = static_cast<double>(i) / steps;
      const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
      total += w * beta_pdf(a, b, x) / steps;
    }
    EXPECT_NEAR(total, 1.0, 1e-4) << a << "," << b;
  }
}

TEST(Beta, CdfQuantileRoundTrip) {
  for (double p = 0.05; p < 1.0; p += 0.1) {
    const double x = beta_quantile(3.0, 7.0, p);
    EXPECT_NEAR(beta_cdf(3.0, 7.0, x), p, 1e-9);
  }
}

TEST(Beta, PdfOutsideSupportIsZero) {
  EXPECT_EQ(beta_pdf(2.0, 2.0, -0.1), 0.0);
  EXPECT_EQ(beta_pdf(2.0, 2.0, 1.1), 0.0);
}

/// Reference values for I_x(a, b) at extreme shapes, mirroring the
/// kPhiReferences far-tail suite in test_special.cpp. Computed with
/// mpmath at 50 significant digits: small-shape rows via betainc,
/// large-shape rows (where betainc's series fails to converge) via
/// adaptive quadrature of the log-space density split at its peak.
struct BetaReference {
  double a;
  double b;
  double x;  // CDF argument, or probability for the quantile table.
  double value;
};

constexpr BetaReference kBetaCdfReferences[] = {
    // a or b < 1e-3 boundary region and x pinned near 0 / 1.
    {1.000000e-04, 1.000000e+00, 1.00000000000000004e-10,
     9.97700063822553273596e-01},
    {1.000000e-04, 1.000000e+00, 5.00000000000000000e-01,
     9.99930687684153607364e-01},
    {1.000000e+00, 1.000000e-04, 5.00000000000000000e-01,
     6.93123158464280892874e-05},
    {1.000000e+00, 1.000000e-04, 9.99999999899999992e-01,
     2.29993616919167611495e-03},
    {1.000000e-03, 1.000000e-03, 5.00000000000000000e-01,
     5.00000000000000000000e-01},
    {5.000000e-01, 5.000000e-01, 1.00000000000000004e-10,
     6.36619772378191689445e-06},
    {5.000000e-01, 5.000000e-01, 9.99999999068677425e-01,
     9.99980571906357806888e-01},
};

constexpr BetaReference kBetaCdfLargeShapeReferences[] = {
    // a + b > 1e6: the distribution concentrates in a ~5e-4-wide spike, so
    // x must be chosen within a few standard deviations of a/(a+b).
    {6.000000e+05, 5.000000e+05, 5.45399999999999996e-01,
     4.54242976342055182482e-01},
    {6.000000e+05, 5.000000e+05, 5.46000000000000041e-01,
     8.74707822167668513913e-01},
    {6.000000e+05, 5.000000e+05, 5.44900000000000051e-01,
     1.21395308430037054959e-01},
    {1.000000e+06, 2.500000e+00, 9.99998999999999971e-01,
     8.49144690153511016995e-01},
    {1.000000e+06, 2.500000e+00, 9.99999900000000053e-01,
     9.99113859490354916382e-01},
    {2.500000e+00, 1.000000e+06, 9.99999999999999955e-07,
     1.50855309838531154165e-01},
    {2.500000e+00, 1.000000e+06, 3.99999999999999982e-06,
     8.43765584884056729642e-01},
};

TEST(Beta, CdfExtremeShapeRelativeAccuracy) {
  for (const auto& [a, b, x, reference] : kBetaCdfReferences) {
    const double got = beta_cdf(a, b, x);
    const double rel = std::fabs(got - reference) / reference;
    EXPECT_LT(rel, 1e-12) << "a=" << a << " b=" << b << " x=" << x
                          << " got=" << got;
  }
  // The Lentz continued fraction converges more slowly at huge total
  // counts; ~1e-9 relative is what 300 iterations deliver there.
  for (const auto& [a, b, x, reference] : kBetaCdfLargeShapeReferences) {
    const double got = beta_cdf(a, b, x);
    const double rel = std::fabs(got - reference) / reference;
    EXPECT_LT(rel, 1e-8) << "a=" << a << " b=" << b << " x=" << x
                         << " got=" << got;
  }
}

constexpr BetaReference kBetaQuantileReferences[] = {
    // Tiny shapes push the quantile hundreds of decades below 1: the
    // first row is ~9e-302, unreachable by arithmetic bisection — it pins
    // the log-space Newton path in the inverter. Rows with the solution
    // near 1 pin the complement-tail flip.
    {1.000000e-03, 1.000000e+00, 5.00000000000000000e-01,
     9.33263618503232348690e-302},
    {1.000000e-03, 1.000000e+00, 9.00000000000000022e-01,
     1.74787125172269859174e-46},
    {1.000000e-04, 1.000000e+00, 9.99998999999999971e-01,
     9.90049828798630904281e-01},
    {1.000000e+00, 1.000000e-03, 1.00000000000000002e-03,
     6.32304575229035936701e-01},
    {1.000000e+00, 1.000000e-03, 9.99999999999999955e-07,
     9.99500666125591056069e-04},
    {5.000000e-01, 5.000000e-01, 1.00000000000000004e-10,
     2.46740110027233974377e-20},
    {5.000000e-01, 5.000000e-01, 5.00000000000000000e-01,
     5.00000000000000000000e-01},
};

constexpr BetaReference kBetaQuantileLargeShapeReferences[] = {
    {6.000000e+05, 5.000000e+05, 9.99999999999999955e-07,
     5.43197238977036422902e-01},
    {6.000000e+05, 5.000000e+05, 5.00000000000000000e-01,
     5.45454573002764786516e-01},
    {6.000000e+05, 5.000000e+05, 9.99998999999999971e-01,
     5.47710662128769287804e-01},
    {1.000000e+06, 2.500000e+00, 2.50000000000000014e-02,
     9.99993583774399175113e-01},
    {1.000000e+06, 2.500000e+00, 9.74999999999999978e-01,
     9.99999584394591356507e-01},
    {2.500000e+00, 1.000000e+06, 2.50000000000000014e-02,
     4.15605408675359875545e-07},
    {2.500000e+00, 1.000000e+06, 9.74999999999999978e-01,
     6.41622560077082304607e-06},
};

TEST(Beta, QuantileExtremeShapeRelativeAccuracy) {
  for (const auto& [a, b, p, reference] : kBetaQuantileReferences) {
    const double got = beta_quantile(a, b, p);
    const double rel = std::fabs(got - reference) / reference;
    EXPECT_LT(rel, 1e-11) << "a=" << a << " b=" << b << " p=" << p
                          << " got=" << got;
  }
  for (const auto& [a, b, p, reference] : kBetaQuantileLargeShapeReferences) {
    const double got = beta_quantile(a, b, p);
    const double rel = std::fabs(got - reference) / reference;
    EXPECT_LT(rel, 1e-8) << "a=" << a << " b=" << b << " p=" << p
                         << " got=" << got;
  }
}

TEST(Beta, QuantileExtremeShapeRoundTrip) {
  // CDF∘quantile must return each probability to near-full precision even
  // where the quantile itself spans extreme magnitudes.
  for (const auto& [a, b, p, reference] : kBetaQuantileReferences) {
    (void)reference;
    EXPECT_NEAR(beta_cdf(a, b, beta_quantile(a, b, p)), p, 1e-11 * p + 1e-15)
        << "a=" << a << " b=" << b << " p=" << p;
  }
}

TEST(DiscreteDistribution, ValidatesInput) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({-0.1, 1.1}), std::invalid_argument);
  EXPECT_NO_THROW(DiscreteDistribution({0.8, 0.2}));
}

TEST(DiscreteDistribution, FromWeightsNormalises) {
  const auto d = DiscreteDistribution::from_weights({2.0, 6.0});
  EXPECT_NEAR(d[0], 0.25, 1e-12);
  EXPECT_NEAR(d[1], 0.75, 1e-12);
  EXPECT_THROW(DiscreteDistribution::from_weights({0.0, 0.0}),
               std::invalid_argument);
}

TEST(DiscreteDistribution, ExpectationIsWeightedAverage) {
  const DiscreteDistribution d({0.8, 0.2});
  const std::vector<double> values{0.143, 0.605};
  EXPECT_NEAR(d.expectation(values), 0.8 * 0.143 + 0.2 * 0.605, 1e-12);
  const std::vector<double> wrong_size{1.0};
  EXPECT_THROW(d.expectation(wrong_size), std::invalid_argument);
}

TEST(DiscreteDistribution, SamplingMatchesProbabilities) {
  const DiscreteDistribution d({0.1, 0.6, 0.3});
  Rng rng(99);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[d.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.6, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(AliasTable, ValidatesInput) {
  const std::vector<double> empty;
  EXPECT_THROW(AliasTable{std::span<const double>(empty)},
               std::invalid_argument);
  const std::vector<double> not_normalised{0.5, 0.6};
  EXPECT_THROW(AliasTable{std::span<const double>(not_normalised)},
               std::invalid_argument);
  const std::vector<double> negative{-0.1, 1.1};
  EXPECT_THROW(AliasTable{std::span<const double>(negative)},
               std::invalid_argument);
  const std::vector<double> nan_entry{std::nan(""), 1.0};
  EXPECT_THROW(AliasTable{std::span<const double>(nan_entry)},
               std::invalid_argument);
}

TEST(AliasTable, SingleClassAlwaysReturnsZero) {
  const std::vector<double> p{1.0};
  const AliasTable table{std::span<const double>(p)};
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
  EXPECT_EQ(table.sample_from_uniform(0.0), 0u);
  EXPECT_EQ(table.sample_from_uniform(0.999999), 0u);
}

TEST(AliasTable, ZeroProbabilityClassIsNeverDrawn) {
  const std::vector<double> p{0.4, 0.0, 0.6};
  const AliasTable table{std::span<const double>(p)};
  Rng rng(2);
  for (int i = 0; i < 200000; ++i) EXPECT_NE(table.sample(rng), 1u);
}

TEST(AliasTable, FrequenciesMatchSkewedDistribution) {
  // Mixes a tiny and a dominant mass — the case Vose's variant keeps exact.
  const std::vector<double> p{0.001, 0.799, 0.15, 0.05};
  const AliasTable table{std::span<const double>(p)};
  Rng rng(3);
  std::vector<int> counts(p.size(), 0);
  const int n = 1000000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  for (std::size_t k = 0; k < p.size(); ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), p[k],
                0.005 + 3.0 * std::sqrt(p[k] * (1.0 - p[k]) / n))
        << k;
  }
}

TEST(AliasTable, SampleConsumesExactlyOneUniform) {
  const DiscreteDistribution d({0.25, 0.25, 0.5});
  Rng via_table(4), via_uniform(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(d.alias().sample(via_table),
              d.alias().sample_from_uniform(via_uniform.uniform()));
  }
  EXPECT_EQ(via_table.next_u64(), via_uniform.next_u64());
}

}  // namespace
}  // namespace hmdiv::stats
