// Unit + property tests for stats/distributions.hpp.
#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace hmdiv::stats {
namespace {

TEST(Binomial, PmfSumsToOne) {
  for (const double p : {0.0, 0.2, 0.5, 0.97, 1.0}) {
    double total = 0.0;
    for (std::uint64_t k = 0; k <= 30; ++k) total += binomial_pmf(30, p, k);
    EXPECT_NEAR(total, 1.0, 1e-12) << p;
  }
}

TEST(Binomial, PmfKnownValues) {
  EXPECT_NEAR(binomial_pmf(4, 0.5, 2), 0.375, 1e-12);
  EXPECT_NEAR(binomial_pmf(10, 0.1, 0), std::pow(0.9, 10), 1e-12);
  EXPECT_EQ(binomial_pmf(5, 0.3, 6), 0.0);
}

TEST(Binomial, CdfMatchesPmfSum) {
  const std::uint64_t n = 25;
  const double p = 0.37;
  double running = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    running += binomial_pmf(n, p, k);
    EXPECT_NEAR(binomial_cdf(n, p, k), running, 1e-10) << k;
  }
  EXPECT_EQ(binomial_cdf(n, p, n), 1.0);
}

TEST(Binomial, RejectsBadProbability) {
  EXPECT_THROW(binomial_pmf(5, -0.1, 2), std::invalid_argument);
  EXPECT_THROW(binomial_cdf(5, 1.1, 2), std::invalid_argument);
}

TEST(Beta, PdfIntegratesToOne) {
  // Trapezoidal integration on interior (a,b > 1 so pdf finite at ends).
  for (const auto& [a, b] : std::vector<std::pair<double, double>>{
           {2.0, 2.0}, {3.0, 1.5}, {5.0, 8.0}}) {
    const int steps = 20000;
    double total = 0.0;
    for (int i = 0; i <= steps; ++i) {
      const double x = static_cast<double>(i) / steps;
      const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
      total += w * beta_pdf(a, b, x) / steps;
    }
    EXPECT_NEAR(total, 1.0, 1e-4) << a << "," << b;
  }
}

TEST(Beta, CdfQuantileRoundTrip) {
  for (double p = 0.05; p < 1.0; p += 0.1) {
    const double x = beta_quantile(3.0, 7.0, p);
    EXPECT_NEAR(beta_cdf(3.0, 7.0, x), p, 1e-9);
  }
}

TEST(Beta, PdfOutsideSupportIsZero) {
  EXPECT_EQ(beta_pdf(2.0, 2.0, -0.1), 0.0);
  EXPECT_EQ(beta_pdf(2.0, 2.0, 1.1), 0.0);
}

TEST(DiscreteDistribution, ValidatesInput) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({-0.1, 1.1}), std::invalid_argument);
  EXPECT_NO_THROW(DiscreteDistribution({0.8, 0.2}));
}

TEST(DiscreteDistribution, FromWeightsNormalises) {
  const auto d = DiscreteDistribution::from_weights({2.0, 6.0});
  EXPECT_NEAR(d[0], 0.25, 1e-12);
  EXPECT_NEAR(d[1], 0.75, 1e-12);
  EXPECT_THROW(DiscreteDistribution::from_weights({0.0, 0.0}),
               std::invalid_argument);
}

TEST(DiscreteDistribution, ExpectationIsWeightedAverage) {
  const DiscreteDistribution d({0.8, 0.2});
  const std::vector<double> values{0.143, 0.605};
  EXPECT_NEAR(d.expectation(values), 0.8 * 0.143 + 0.2 * 0.605, 1e-12);
  const std::vector<double> wrong_size{1.0};
  EXPECT_THROW(d.expectation(wrong_size), std::invalid_argument);
}

TEST(DiscreteDistribution, SamplingMatchesProbabilities) {
  const DiscreteDistribution d({0.1, 0.6, 0.3});
  Rng rng(99);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[d.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.6, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(AliasTable, ValidatesInput) {
  const std::vector<double> empty;
  EXPECT_THROW(AliasTable{std::span<const double>(empty)},
               std::invalid_argument);
  const std::vector<double> not_normalised{0.5, 0.6};
  EXPECT_THROW(AliasTable{std::span<const double>(not_normalised)},
               std::invalid_argument);
  const std::vector<double> negative{-0.1, 1.1};
  EXPECT_THROW(AliasTable{std::span<const double>(negative)},
               std::invalid_argument);
  const std::vector<double> nan_entry{std::nan(""), 1.0};
  EXPECT_THROW(AliasTable{std::span<const double>(nan_entry)},
               std::invalid_argument);
}

TEST(AliasTable, SingleClassAlwaysReturnsZero) {
  const std::vector<double> p{1.0};
  const AliasTable table{std::span<const double>(p)};
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
  EXPECT_EQ(table.sample_from_uniform(0.0), 0u);
  EXPECT_EQ(table.sample_from_uniform(0.999999), 0u);
}

TEST(AliasTable, ZeroProbabilityClassIsNeverDrawn) {
  const std::vector<double> p{0.4, 0.0, 0.6};
  const AliasTable table{std::span<const double>(p)};
  Rng rng(2);
  for (int i = 0; i < 200000; ++i) EXPECT_NE(table.sample(rng), 1u);
}

TEST(AliasTable, FrequenciesMatchSkewedDistribution) {
  // Mixes a tiny and a dominant mass — the case Vose's variant keeps exact.
  const std::vector<double> p{0.001, 0.799, 0.15, 0.05};
  const AliasTable table{std::span<const double>(p)};
  Rng rng(3);
  std::vector<int> counts(p.size(), 0);
  const int n = 1000000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  for (std::size_t k = 0; k < p.size(); ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), p[k],
                0.005 + 3.0 * std::sqrt(p[k] * (1.0 - p[k]) / n))
        << k;
  }
}

TEST(AliasTable, SampleConsumesExactlyOneUniform) {
  const DiscreteDistribution d({0.25, 0.25, 0.5});
  Rng via_table(4), via_uniform(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(d.alias().sample(via_table),
              d.alias().sample_from_uniform(via_uniform.uniform()));
  }
  EXPECT_EQ(via_table.next_u64(), via_uniform.next_u64());
}

}  // namespace
}  // namespace hmdiv::stats
