// Unit + property tests for stats/special.hpp.
#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>

namespace hmdiv::stats {
namespace {

TEST(Special, LogBinomialCoefficientKnownValues) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(52, 5)), 2598960.0, 1e-3);
  EXPECT_THROW(log_binomial_coefficient(3, 4), std::invalid_argument);
}

TEST(Special, IncompleteBetaUniformCase) {
  // I_x(1,1) = x.
  for (const double x : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(Special, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 − I_{1−x}(b,a).
  for (const double x : {0.1, 0.3, 0.7}) {
    EXPECT_NEAR(regularized_incomplete_beta(2.5, 4.0, x),
                1.0 - regularized_incomplete_beta(4.0, 2.5, 1.0 - x), 1e-12);
  }
}

TEST(Special, IncompleteBetaKnownValue) {
  // I_{0.5}(2,2) = 0.5 by symmetry; I_{0.25}(2,2) = 3x^2 - 2x^3 at 0.25.
  EXPECT_NEAR(regularized_incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
  const double x = 0.25;
  EXPECT_NEAR(regularized_incomplete_beta(2.0, 2.0, x),
              3.0 * x * x - 2.0 * x * x * x, 1e-12);
}

TEST(Special, IncompleteBetaRejectsBadArguments) {
  EXPECT_THROW(regularized_incomplete_beta(0.0, 1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(regularized_incomplete_beta(1.0, 1.0, -0.1),
               std::invalid_argument);
  EXPECT_THROW(regularized_incomplete_beta(1.0, 1.0, 1.1),
               std::invalid_argument);
}

/// Round-trip property: inverse(I_x) recovers x over a grid of (a, b, p).
class IncompleteBetaRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(IncompleteBetaRoundTrip, InverseRecoversProbability) {
  const auto [a, b] = GetParam();
  for (double p = 0.02; p < 1.0; p += 0.07) {
    const double x = inverse_regularized_incomplete_beta(a, b, p);
    EXPECT_NEAR(regularized_incomplete_beta(a, b, x), p, 1e-9)
        << "a=" << a << " b=" << b << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IncompleteBetaRoundTrip,
    ::testing::Values(std::make_tuple(0.5, 0.5), std::make_tuple(1.0, 3.0),
                      std::make_tuple(2.0, 2.0), std::make_tuple(5.0, 1.5),
                      std::make_tuple(20.0, 80.0),
                      std::make_tuple(200.0, 300.0)));

TEST(Special, IncompleteGammaBoundariesAndKnownValues) {
  EXPECT_EQ(regularized_lower_incomplete_gamma(1.0, 0.0), 0.0);
  // P(1, x) = 1 − e^{−x}.
  for (const double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(regularized_lower_incomplete_gamma(1.0, x), 1.0 - std::exp(-x),
                1e-12);
  }
  // Chi-square(2) at its median ~1.3863: P = 0.5.
  EXPECT_NEAR(regularized_lower_incomplete_gamma(1.0, 0.5 * 1.3862943611),
              0.5, 1e-9);
  EXPECT_THROW(regularized_lower_incomplete_gamma(0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(regularized_lower_incomplete_gamma(1.0, -1.0),
               std::invalid_argument);
}

TEST(Special, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(Special, NormalQuantileRoundTrip) {
  for (double p = 0.0005; p < 1.0; p += 0.013) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-11) << p;
  }
}

TEST(Special, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-8);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963985, 1e-8);
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::stats
