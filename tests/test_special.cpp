// Unit + property tests for stats/special.hpp.
#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace hmdiv::stats {
namespace {

TEST(Special, LogBinomialCoefficientKnownValues) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(52, 5)), 2598960.0, 1e-3);
  EXPECT_THROW(log_binomial_coefficient(3, 4), std::invalid_argument);
}

TEST(Special, IncompleteBetaUniformCase) {
  // I_x(1,1) = x.
  for (const double x : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(Special, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 − I_{1−x}(b,a).
  for (const double x : {0.1, 0.3, 0.7}) {
    EXPECT_NEAR(regularized_incomplete_beta(2.5, 4.0, x),
                1.0 - regularized_incomplete_beta(4.0, 2.5, 1.0 - x), 1e-12);
  }
}

TEST(Special, IncompleteBetaKnownValue) {
  // I_{0.5}(2,2) = 0.5 by symmetry; I_{0.25}(2,2) = 3x^2 - 2x^3 at 0.25.
  EXPECT_NEAR(regularized_incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
  const double x = 0.25;
  EXPECT_NEAR(regularized_incomplete_beta(2.0, 2.0, x),
              3.0 * x * x - 2.0 * x * x * x, 1e-12);
}

TEST(Special, IncompleteBetaRejectsBadArguments) {
  EXPECT_THROW(regularized_incomplete_beta(0.0, 1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(regularized_incomplete_beta(1.0, 1.0, -0.1),
               std::invalid_argument);
  EXPECT_THROW(regularized_incomplete_beta(1.0, 1.0, 1.1),
               std::invalid_argument);
}

/// Round-trip property: inverse(I_x) recovers x over a grid of (a, b, p).
class IncompleteBetaRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(IncompleteBetaRoundTrip, InverseRecoversProbability) {
  const auto [a, b] = GetParam();
  for (double p = 0.02; p < 1.0; p += 0.07) {
    const double x = inverse_regularized_incomplete_beta(a, b, p);
    EXPECT_NEAR(regularized_incomplete_beta(a, b, x), p, 1e-9)
        << "a=" << a << " b=" << b << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IncompleteBetaRoundTrip,
    ::testing::Values(std::make_tuple(0.5, 0.5), std::make_tuple(1.0, 3.0),
                      std::make_tuple(2.0, 2.0), std::make_tuple(5.0, 1.5),
                      std::make_tuple(20.0, 80.0),
                      std::make_tuple(200.0, 300.0)));

TEST(Special, IncompleteGammaBoundariesAndKnownValues) {
  EXPECT_EQ(regularized_lower_incomplete_gamma(1.0, 0.0), 0.0);
  // P(1, x) = 1 − e^{−x}.
  for (const double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(regularized_lower_incomplete_gamma(1.0, x), 1.0 - std::exp(-x),
                1e-12);
  }
  // Chi-square(2) at its median ~1.3863: P = 0.5.
  EXPECT_NEAR(regularized_lower_incomplete_gamma(1.0, 0.5 * 1.3862943611),
              0.5, 1e-9);
  EXPECT_THROW(regularized_lower_incomplete_gamma(0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(regularized_lower_incomplete_gamma(1.0, -1.0),
               std::invalid_argument);
}

TEST(Special, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

/// Φ(z) references across the far tails (|z| up to 8), computed with
/// 80-bit long-double erfc — ~5 decimal digits more precision than the
/// values under test. The batched overload shares these via the
/// bit-identity check below.
struct PhiReference {
  double z;
  double phi;
};
constexpr PhiReference kPhiReferences[] = {
    {-8.00000, 6.22096057427178413436e-16},
    {-7.25000, 2.08385815867206943063e-13},
    {-6.50000, 4.01600058385911781711e-11},
    {-5.75000, 4.46217245390161187480e-09},
    {-5.00000, 2.86651571879193911854e-07},
    {-4.25000, 1.06885257749344204776e-05},
    {-3.50000, 2.32629079035525036293e-04},
    {-2.75000, 2.97976323505455675426e-03},
    {-2.00000, 2.27501319481792072029e-02},
    {-1.25000, 1.05649773666855257691e-01},
    {-0.50000, 3.08537538725986896376e-01},
    {0.50000, 6.91462461274013103624e-01},
    {1.25000, 8.94350226333144742309e-01},
    {2.00000, 9.77249868051820792824e-01},
    {2.75000, 9.97020236764945443271e-01},
    {3.50000, 9.99767370920964474983e-01},
    {4.25000, 9.99989311474225065597e-01},
    {5.00000, 9.99999713348428120809e-01},
    {5.75000, 9.99999995537827546092e-01},
    {6.50000, 9.99999999959839994145e-01},
    {7.25000, 9.99999999999791614174e-01},
    {8.00000, 9.99999999999999377885e-01},
};

TEST(Special, NormalCdfFarTailRelativeAccuracy) {
  // The far tail is where naive 1 − Φ(−z) formulations lose all relative
  // precision (Φ(−8) ~ 6e-16 is below one ulp of 1.0). The Cody kernel must
  // hold *relative* error everywhere on |z| <= 8.
  for (const auto& [z, reference] : kPhiReferences) {
    const double got = normal_cdf(z);
    const double rel = std::fabs(got - reference) / reference;
    EXPECT_LT(rel, 1e-13) << "z = " << z << " got " << got;
  }
}

TEST(Special, NormalCdfBatchedMatchesScalarBitwise) {
  // Ascending, descending and shuffled inputs must all reproduce the
  // scalar path bit-for-bit; the far-tail accuracy above therefore covers
  // the batched overload too.
  std::vector<double> ascending;
  for (const auto& ref : kPhiReferences) ascending.push_back(ref.z);
  // Denser grid around the region cuts (|x| = z/√2 near 0.46875, 4, 26.5).
  for (double z = -40.0; z <= 40.0; z += 0.37) ascending.push_back(z);
  std::sort(ascending.begin(), ascending.end());

  std::vector<double> descending(ascending.rbegin(), ascending.rend());
  std::vector<double> shuffled = ascending;
  for (std::size_t i = 1; i < shuffled.size(); i += 2) {
    std::swap(shuffled[i - 1], shuffled[i]);
  }

  for (const auto& input : {ascending, descending, shuffled}) {
    std::vector<double> batch(input.size());
    normal_cdf(std::span<const double>(input), std::span<double>(batch));
    for (std::size_t i = 0; i < input.size(); ++i) {
      const double scalar = normal_cdf(input[i]);
      EXPECT_EQ(std::memcmp(&batch[i], &scalar, sizeof(double)), 0)
          << "z = " << input[i];
    }
  }
}

TEST(Special, NormalCdfEdgeCases) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(normal_cdf(inf), 1.0);
  EXPECT_EQ(normal_cdf(-inf), 0.0);
  EXPECT_EQ(normal_cdf(40.0), 1.0);   // flush region: exactly 1
  EXPECT_EQ(normal_cdf(-40.0), 0.0);  // flush region: exactly 0
  EXPECT_TRUE(std::isnan(normal_cdf(std::numeric_limits<double>::quiet_NaN())));

  std::vector<double> z = {1.0, 2.0};
  std::vector<double> out(3);
  EXPECT_THROW(
      normal_cdf(std::span<const double>(z), std::span<double>(out)),
      std::invalid_argument);
}

TEST(Special, NormalQuantileRoundTrip) {
  for (double p = 0.0005; p < 1.0; p += 0.013) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-11) << p;
  }
}

TEST(Special, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-8);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963985, 1e-8);
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::stats
