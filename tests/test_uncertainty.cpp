// Unit tests for core/uncertainty.hpp — trial-size-aware predictions.
#include "core/uncertainty.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/paper_example.hpp"

namespace hmdiv::core {
namespace {

std::vector<ClassCounts> plausible_counts() {
  // Roughly the paper's parameters observed in a 1000-case trial (800/200).
  ClassCounts easy;
  easy.cases = 800;
  easy.machine_failures = 56;                         // ~0.07
  easy.human_failures_given_machine_failed = 10;      // ~0.18
  easy.human_failures_given_machine_succeeded = 104;  // ~0.14
  ClassCounts difficult;
  difficult.cases = 200;
  difficult.machine_failures = 82;                        // ~0.41
  difficult.human_failures_given_machine_failed = 74;     // ~0.9
  difficult.human_failures_given_machine_succeeded = 47;  // ~0.4
  return {easy, difficult};
}

TEST(Uncertainty, ValidatesCounts) {
  ClassCounts bad;
  bad.cases = 10;
  bad.machine_failures = 12;
  EXPECT_THROW(PosteriorModelSampler({"a"}, {bad}), std::invalid_argument);
  ClassCounts zero;
  EXPECT_THROW(PosteriorModelSampler({"a"}, {zero}), std::invalid_argument);
  ClassCounts inconsistent;
  inconsistent.cases = 10;
  inconsistent.machine_failures = 2;
  inconsistent.human_failures_given_machine_failed = 3;
  EXPECT_THROW(PosteriorModelSampler({"a"}, {inconsistent}),
               std::invalid_argument);
  EXPECT_THROW(PosteriorModelSampler({}, {}), std::invalid_argument);
}

TEST(Uncertainty, PosteriorMeanTracksObservedProportions) {
  const PosteriorModelSampler sampler({"easy", "difficult"},
                                      plausible_counts());
  const auto m = sampler.posterior_mean_model();
  EXPECT_NEAR(m.parameters(0).p_machine_fails, 56.0 / 800.0, 0.01);
  EXPECT_NEAR(m.parameters(1).p_machine_fails, 82.0 / 200.0, 0.01);
  EXPECT_NEAR(m.parameters(1).p_human_fails_given_machine_fails, 74.0 / 82.0,
              0.02);
}

TEST(Uncertainty, SamplesAreValidModels) {
  const PosteriorModelSampler sampler({"easy", "difficult"},
                                      plausible_counts());
  stats::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const auto m = sampler.sample(rng);
    for (std::size_t x = 0; x < 2; ++x) {
      const auto& c = m.parameters(x);
      EXPECT_GE(c.p_machine_fails, 0.0);
      EXPECT_LE(c.p_machine_fails, 1.0);
      EXPECT_GE(c.p_human_fails_given_machine_fails, 0.0);
      EXPECT_LE(c.p_human_fails_given_machine_fails, 1.0);
    }
  }
}

TEST(Uncertainty, PredictionCoversEq8Value) {
  const PosteriorModelSampler sampler({"easy", "difficult"},
                                      plausible_counts());
  stats::Rng rng(10);
  const auto prediction =
      sampler.predict(paper::field_profile(), rng, 4000);
  // The generating parameters are close to the paper's: 0.189 must lie in
  // the credible interval, and the mean near it.
  EXPECT_LT(prediction.lower, 0.189);
  EXPECT_GT(prediction.upper, 0.189);
  EXPECT_NEAR(prediction.mean, 0.189, 0.02);
  EXPECT_GT(prediction.stddev, 0.0);
}

TEST(Uncertainty, IntervalShrinksWithTrialSize) {
  auto scale = [](const std::vector<ClassCounts>& base, std::uint64_t k) {
    std::vector<ClassCounts> out = base;
    for (auto& c : out) {
      c.cases *= k;
      c.machine_failures *= k;
      c.human_failures_given_machine_failed *= k;
      c.human_failures_given_machine_succeeded *= k;
    }
    return out;
  };
  const auto base = plausible_counts();
  stats::Rng rng(11);
  const auto small = PosteriorModelSampler({"easy", "difficult"}, base)
                         .predict(paper::field_profile(), rng, 3000);
  const auto large =
      PosteriorModelSampler({"easy", "difficult"}, scale(base, 16))
          .predict(paper::field_profile(), rng, 3000);
  EXPECT_LT(large.width(), small.width());
  EXPECT_LT(large.width(), 0.5 * small.width());  // ~4x shrink expected
}

TEST(Uncertainty, PredictValidatesArguments) {
  const PosteriorModelSampler sampler({"easy", "difficult"},
                                      plausible_counts());
  stats::Rng rng(12);
  EXPECT_THROW(static_cast<void>(
                   sampler.predict(paper::field_profile(), rng, 0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(
                   sampler.predict(paper::field_profile(), rng, 100, 1.5)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::core
