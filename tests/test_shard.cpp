// Tests for the multi-process shard engine: the wire protocol
// (exec/shard_protocol.hpp), the fork/exec runner (exec/shard.hpp), the
// 1-vs-N bit-identity contract of every sharded workload, and structured
// failure handling under injected worker faults.
//
// The fork/exec tests re-enter this very binary through the
// --shard-worker flag (see tests/test_main.cpp), so workload handlers
// registered in this TU are available in the workers too. ThreadSanitizer
// does not support fork/exec'd children that keep running threaded code,
// so every test that actually spawns workers self-skips under TSan; the
// protocol and determinism-contract pieces that stay in-process still run.
#include "exec/shard.hpp"

#include <gtest/gtest.h>

#include <sys/time.h>
#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/paper_example.hpp"
#include "core/tradeoff.hpp"
#include "core/tradeoff_shard.hpp"
#include "core/uncertainty.hpp"
#include "core/uncertainty_shard.hpp"
#include "exec/config.hpp"
#include "obs/obs.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"
#include "sim/trial_shard.hpp"
#include "stats/rng.hpp"

#if defined(__SANITIZE_THREAD__)
#define HMDIV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMDIV_TSAN 1
#endif
#endif
#ifndef HMDIV_TSAN
#define HMDIV_TSAN 0
#endif

// Fork/exec of a threaded parent is outside TSan's supported model; the
// runner itself is exercised by the non-sanitized jobs.
#define HMDIV_SKIP_FORK_UNDER_TSAN()                                   \
  do {                                                                 \
    if (HMDIV_TSAN) {                                                  \
      GTEST_SKIP() << "fork/exec workers are not TSan-instrumentable"; \
    }                                                                  \
  } while (0)

namespace hmdiv {
namespace {

namespace wire = exec::wire;

/// Scoped environment override that restores the previous value.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

// --- Test workloads (registered in workers too: same binary) --------------

std::vector<std::uint8_t> echo_handler(const wire::ShardTask& task) {
  wire::Writer w;
  w.u32(task.shard_index);
  w.u32(task.shard_count);
  w.bytes(task.blob);
  return w.take();
}

std::vector<std::uint8_t> boom_handler(const wire::ShardTask&) {
  throw std::runtime_error("deliberate test explosion");
}

const exec::ShardWorkloadRegistration kEchoRegistration{"test.echo",
                                                        &echo_handler};
const exec::ShardWorkloadRegistration kBoomRegistration{"test.boom",
                                                        &boom_handler};

exec::ShardOptions test_options(unsigned shards,
                                std::chrono::milliseconds deadline =
                                    std::chrono::milliseconds(60'000)) {
  exec::ShardOptions options;
  options.shards = shards;
  options.threads = 1;
  options.deadline = deadline;
  return options;
}

/// Runs a workload expecting a ShardError and returns its failure record.
exec::ShardFailure expect_failure(std::string_view workload,
                                  const exec::ShardOptions& options) {
  const exec::ShardRunner runner(options);
  try {
    static_cast<void>(runner.run(workload, {}));
  } catch (const exec::ShardError& e) {
    return e.failure();
  }
  ADD_FAILURE() << "expected ShardError from workload " << workload;
  return exec::ShardFailure{};
}

/// After every failure path the runner must have reaped all children.
void expect_no_zombies() {
  errno = 0;
  const pid_t pid = ::waitpid(-1, nullptr, WNOHANG);
  EXPECT_TRUE(pid == -1 && errno == ECHILD)
      << "unreaped child remains (waitpid returned " << pid << ")";
}

// --- Protocol -------------------------------------------------------------

TEST(ShardProtocol, WriterReaderRoundTrip) {
  wire::Writer w;
  w.u8(7);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(0.1);  // not exactly representable: must round-trip bit-for-bit
  w.str("easy");
  const std::vector<double> values{1.5, -0.0, 3.25e-300};
  w.doubles(values);
  const std::vector<std::uint8_t> payload = w.take();

  wire::Reader r(payload);
  EXPECT_EQ(r.u8(), 7U);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), 0.1);
  EXPECT_EQ(r.str(), "easy");
  const std::vector<double> back = r.doubles();
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]),
              std::bit_cast<std::uint64_t>(values[i]));
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(ShardProtocol, ReaderThrowsOnUnderrun) {
  wire::Writer w;
  w.u32(1);
  const std::vector<std::uint8_t> payload = w.data();
  wire::Reader r(payload);
  EXPECT_THROW(r.u64(), wire::ProtocolError);
}

TEST(ShardProtocol, FrameParserReassemblesByteByByte) {
  wire::Writer w;
  w.str("payload bytes");
  std::vector<std::uint8_t> stream;
  wire::append_frame(stream, wire::FrameType::result, w.data());

  wire::FrameParser parser;
  std::size_t frames = 0;
  for (const std::uint8_t byte : stream) {
    parser.feed(std::span<const std::uint8_t>(&byte, 1));
    while (auto frame = parser.next()) {
      ++frames;
      EXPECT_EQ(frame->type, wire::FrameType::result);
      EXPECT_EQ(frame->payload, w.data());
    }
  }
  EXPECT_EQ(frames, 1U);
  EXPECT_TRUE(parser.idle());
}

TEST(ShardProtocol, FrameParserFlagsTruncation) {
  std::vector<std::uint8_t> stream;
  wire::append_frame(stream, wire::FrameType::result,
                     std::vector<std::uint8_t>(100, 0x42));
  stream.resize(stream.size() - 10);  // lose the tail, as a dying worker does
  wire::FrameParser parser;
  parser.feed(stream);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_FALSE(parser.idle());  // EOF now would mean "truncated"
}

TEST(ShardProtocol, FrameParserRejectsBadMagic) {
  std::vector<std::uint8_t> garbage(32, 0xAB);
  wire::FrameParser parser;
  parser.feed(garbage);
  EXPECT_THROW(static_cast<void>(parser.next()), wire::ProtocolError);
}

TEST(ShardProtocol, FrameParserRejectsOversizedPayloadLength) {
  wire::Writer header;
  header.u32(wire::kFrameMagic);
  header.u32(static_cast<std::uint32_t>(wire::FrameType::result));
  header.u64(wire::kMaxFramePayload + 1);
  wire::FrameParser parser;
  parser.feed(header.data());
  EXPECT_THROW(static_cast<void>(parser.next()), wire::ProtocolError);
}

TEST(ShardProtocol, TaskRoundTrip) {
  wire::ShardTask task;
  task.workload = "sim.trial";
  task.shard_index = 3;
  task.shard_count = 8;
  task.threads = 2;
  task.obs_enabled = true;
  task.blob = {1, 2, 3, 4, 5};
  const wire::ShardTask back = wire::parse_task(wire::serialize_task(task));
  EXPECT_EQ(back.workload, task.workload);
  EXPECT_EQ(back.shard_index, task.shard_index);
  EXPECT_EQ(back.shard_count, task.shard_count);
  EXPECT_EQ(back.threads, task.threads);
  EXPECT_EQ(back.obs_enabled, task.obs_enabled);
  EXPECT_EQ(back.blob, task.blob);
}

TEST(ShardProtocol, TaskRejectsShardIndexOutOfRange) {
  wire::ShardTask task;
  task.workload = "w";
  task.shard_index = 4;
  task.shard_count = 4;
  EXPECT_THROW(static_cast<void>(wire::parse_task(wire::serialize_task(task))),
               wire::ProtocolError);
}

TEST(ShardProtocol, TaskSpanRoundTripsAndValidates) {
  wire::ShardTask task;
  task.workload = "w";
  task.shard_index = 2;
  task.shard_count = 8;
  task.span = 3;
  task.blob_cached = true;  // cached tasks carry no inline blob
  const wire::ShardTask back = wire::parse_task(wire::serialize_task(task));
  EXPECT_EQ(back.span, 3u);
  EXPECT_TRUE(back.blob_cached);
  EXPECT_TRUE(back.blob.empty());

  // A span of zero, a span running past the shard count, and a cached
  // task that still carries an inline blob are all malformed.
  task.span = 0;
  EXPECT_THROW(static_cast<void>(wire::parse_task(wire::serialize_task(task))),
               wire::ProtocolError);
  task.span = 7;  // index 2 + span 7 > count 8
  EXPECT_THROW(static_cast<void>(wire::parse_task(wire::serialize_task(task))),
               wire::ProtocolError);
  task.span = 3;
  task.blob = {1};
  EXPECT_THROW(static_cast<void>(wire::parse_task(wire::serialize_task(task))),
               wire::ProtocolError);
}

TEST(ShardProtocol, DoneFrameRoundTrips) {
  EXPECT_EQ(wire::parse_done(wire::serialize_done(0)), 0u);
  EXPECT_EQ(wire::parse_done(wire::serialize_done(255)), 255u);
  const std::vector<std::uint8_t> truncated{1, 2};
  EXPECT_THROW(static_cast<void>(wire::parse_done(truncated)),
               wire::ProtocolError);
  const std::vector<std::uint8_t> trailing{1, 0, 0, 0, 9};
  EXPECT_THROW(static_cast<void>(wire::parse_done(trailing)),
               wire::ProtocolError);
}

TEST(ShardProtocol, TaskRangeIsTheUnionOfItsMicroShards) {
  // Nested cuts: a span-k task over micro-shards [s, s+k) must cover
  // exactly the union of the k single-shard ranges — that is what lets
  // the coordinator resize tasks without moving any partition boundary.
  for (const std::uint64_t items : {0ull, 5ull, 97ull, 4097ull}) {
    for (const std::uint32_t count : {1u, 4u, 16u}) {
      for (std::uint32_t s = 0; s < count; ++s) {
        for (std::uint32_t span = 1; s + span <= count; ++span) {
          wire::ShardTask task;
          task.shard_index = s;
          task.shard_count = count;
          task.span = span;
          const wire::ShardRange range = wire::task_range(items, task);
          EXPECT_EQ(range.begin, wire::shard_range(items, s, count).begin);
          EXPECT_EQ(range.end,
                    wire::shard_range(items, s + span - 1, count).end);
          std::uint64_t covered = 0;
          for (std::uint32_t k = 0; k < span; ++k) {
            covered += wire::shard_range(items, s + k, count).size();
          }
          EXPECT_EQ(range.size(), covered);
        }
      }
    }
  }
}

TEST(ShardProtocol, FrameParserReassemblesAcrossEveryChunkBoundary) {
  // A multi-frame stream — result, empty-payload obs, done — fed at every
  // fixed chunk size from 1 byte up to the whole stream: the parser must
  // yield identical frames no matter how read() slices the bytes.
  std::vector<std::uint8_t> stream;
  wire::Writer first;
  first.str("first payload");
  wire::append_frame(stream, wire::FrameType::result, first.data());
  wire::append_frame(stream, wire::FrameType::obs,
                     std::vector<std::uint8_t>{});
  wire::append_frame(stream, wire::FrameType::done, wire::serialize_done(7));

  const auto collect = [&](std::size_t chunk) {
    wire::FrameParser parser;
    std::vector<wire::Frame> frames;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      parser.feed(std::span<const std::uint8_t>(stream.data() + off, n));
      while (auto frame = parser.next()) frames.push_back(std::move(*frame));
    }
    EXPECT_TRUE(parser.idle());
    return frames;
  };
  const auto reference = collect(stream.size());
  ASSERT_EQ(reference.size(), 3u);
  for (std::size_t chunk = 1; chunk < stream.size(); ++chunk) {
    const auto frames = collect(chunk);
    ASSERT_EQ(frames.size(), reference.size()) << "chunk size " << chunk;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(frames[i].type, reference[i].type) << "chunk " << chunk;
      EXPECT_EQ(frames[i].payload, reference[i].payload) << "chunk " << chunk;
    }
  }
}

TEST(ShardProtocol, FrameParserSurvivesRandomizedSplits) {
  // Eight frames with payload sizes straddling the 16-byte header, fed in
  // randomly-sized segments (fixed-seed xorshift, so failures replay).
  std::vector<std::uint8_t> stream;
  std::vector<std::size_t> sizes{0, 1, 15, 16, 17, 64, 255, 300};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    wire::append_frame(
        stream, wire::FrameType::result,
        std::vector<std::uint8_t>(sizes[i],
                                  static_cast<std::uint8_t>(i + 1)));
  }
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next_random = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 50; ++round) {
    wire::FrameParser parser;
    std::size_t frames = 0;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + next_random() % 37, stream.size() - off);
      parser.feed(std::span<const std::uint8_t>(stream.data() + off, n));
      while (auto frame = parser.next()) {
        ASSERT_LT(frames, sizes.size());
        EXPECT_EQ(frame->payload.size(), sizes[frames]);
        ++frames;
      }
      off += n;
    }
    EXPECT_EQ(frames, sizes.size()) << "round " << round;
    EXPECT_TRUE(parser.idle());
  }
}

TEST(ShardProtocol, ShardRangePartitionsExactly) {
  // Contiguous, covering, balanced to within one unit, and equal to the
  // floor formula — for sizes around every divisibility edge.
  for (const std::uint64_t items :
       {0ull, 1ull, 5ull, 256ull, 1000ull, 4097ull}) {
    for (const std::uint32_t shards : {1u, 2u, 3u, 7u, 64u, 256u}) {
      std::uint64_t covered = 0;
      std::uint64_t previous_end = 0;
      for (std::uint32_t s = 0; s < shards; ++s) {
        const wire::ShardRange range = wire::shard_range(items, s, shards);
        EXPECT_EQ(range.begin, previous_end);
        EXPECT_LE(range.size(), items / shards + 1);
        EXPECT_EQ(range.begin, s * items / shards);  // small cases: exact
        covered += range.size();
        previous_end = range.end;
      }
      EXPECT_EQ(covered, items);
      EXPECT_EQ(previous_end, items);
    }
  }
}

// --- Environment default --------------------------------------------------

TEST(ShardEnv, ParsesWellFormedCounts) {
  EnvGuard guard("HMDIV_SHARDS", "3");
  exec::detail::reset_shard_env_warning();
  EXPECT_EQ(exec::shard_count_from_env(), 3U);
}

TEST(ShardEnv, UnsetMeansNoFanOut) {
  EnvGuard guard("HMDIV_SHARDS", nullptr);
  exec::detail::reset_shard_env_warning();
  EXPECT_EQ(exec::shard_count_from_env(), 1U);
}

TEST(ShardEnv, MalformedValuesFallBackToOne) {
  exec::detail::reset_shard_env_warning();
  for (const char* bad : {"0", "2x", "x", "-1", "257",
                          "99999999999999999999999"}) {
    EnvGuard guard("HMDIV_SHARDS", bad);
    exec::detail::reset_shard_env_warning();
    EXPECT_EQ(exec::shard_count_from_env(), 1U) << "value: " << bad;
  }
}

// --- Runner ---------------------------------------------------------------

TEST(ShardRunnerTest, EchoAcrossWorkersMergesInShardOrder) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  const std::vector<std::uint8_t> blob{10, 20, 30};
  const exec::ShardRunner runner(test_options(3));
  const auto payloads = runner.run("test.echo", blob);
  ASSERT_EQ(payloads.size(), 3U);
  for (std::uint32_t s = 0; s < 3; ++s) {
    wire::Reader r(payloads[s]);
    EXPECT_EQ(r.u32(), s);  // ascending shard order = deterministic merge
    EXPECT_EQ(r.u32(), 3U);
    const auto raw = r.take(blob.size());
    EXPECT_TRUE(std::equal(raw.begin(), raw.end(), blob.begin()));
    EXPECT_TRUE(r.exhausted());
  }
  expect_no_zombies();
}

TEST(ShardRunnerTest, UnknownWorkloadIsAStructuredWorkerError) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  const exec::ShardFailure failure =
      expect_failure("test.no_such_workload", test_options(2));
  EXPECT_EQ(failure.kind, exec::ShardFailure::Kind::worker);
  EXPECT_NE(failure.detail.find("unknown workload"), std::string::npos);
  expect_no_zombies();
}

TEST(ShardRunnerTest, WorkerExceptionCarriesTheMessage) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  const exec::ShardFailure failure =
      expect_failure("test.boom", test_options(2));
  EXPECT_EQ(failure.kind, exec::ShardFailure::Kind::worker);
  EXPECT_NE(failure.detail.find("deliberate test explosion"),
            std::string::npos);
  expect_no_zombies();
}

TEST(ShardRunnerTest, BadWorkerBinarySurfacesExecFailure) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  exec::ShardOptions options = test_options(2);
  options.exe = "/no/such/binary";
  const exec::ShardFailure failure = expect_failure("test.echo", options);
  EXPECT_EQ(failure.kind, exec::ShardFailure::Kind::exit_code);
  EXPECT_EQ(failure.code, 127);
  expect_no_zombies();
}

std::atomic<std::uint64_t> g_storm_ticks{0};
void storm_tick(int) { g_storm_ticks.fetch_add(1, std::memory_order_relaxed); }

TEST(ShardRunnerTest, SurvivesSigalrmStormWithoutSaRestart) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  // Fault injection for the runner's EINTR handling: a no-op SIGALRM
  // handler installed WITHOUT SA_RESTART interrupts every blocking
  // syscall in the parent (poll, read, write, waitpid, sigtimedwait in
  // SigpipeGuard's drain) at ~2 kHz while workers run. Workers are
  // unaffected: fork clears interval timers and exec resets the handler.
  struct sigaction storm {};
  storm.sa_handler = &storm_tick;
  sigemptyset(&storm.sa_mask);
  storm.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old_action {};
  ASSERT_EQ(sigaction(SIGALRM, &storm, &old_action), 0);
  itimerval interval{};
  interval.it_interval.tv_usec = 500;
  interval.it_value.tv_usec = 500;
  ASSERT_EQ(setitimer(ITIMER_REAL, &interval, nullptr), 0);

  const std::vector<std::uint8_t> blob{1, 2, 3, 4};
  std::vector<std::vector<std::uint8_t>> stormy;
  for (int round = 0; round < 5; ++round) {
    const exec::ShardRunner runner(test_options(3));
    stormy = runner.run("test.echo", blob);
    ASSERT_EQ(stormy.size(), 3U);
  }

  // Stop the storm before asserting; gtest is not itself EINTR-proof.
  itimerval off{};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &old_action, nullptr);
  EXPECT_GT(g_storm_ticks.load(), 0U) << "storm never fired";

  // The same workload without the storm must be bit-identical.
  const exec::ShardRunner calm_runner(test_options(3));
  EXPECT_EQ(stormy, calm_runner.run("test.echo", blob));
  expect_no_zombies();
}

TEST(ShardRunnerTest, MergesWorkerObsRegistriesIntoParent) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  obs::set_enabled(true);
  obs::Registry::global().reset();
  const exec::ShardRunner runner(test_options(2));
  static_cast<void>(runner.run("test.echo", {}));
  obs::set_enabled(false);
  auto& registry = obs::Registry::global();
  EXPECT_EQ(registry.counter("exec.shard.runs").value(), 1U);
  EXPECT_EQ(registry.counter("exec.shard.workers").value(), 2U);
  // Each worker timed its handler; the merge must carry both recordings.
  EXPECT_EQ(registry.histogram("exec.shard.worker_ns").count(), 2U);
  expect_no_zombies();
}

// --- Determinism: 1 shard == N shards, bit for bit ------------------------

TEST(ShardDeterminism, TrialRecordsAreBitIdenticalAcrossShardCounts) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  const core::SequentialModel model = core::paper::example_model();
  const core::DemandProfile profile = core::paper::trial_profile();
  sim::TabularWorld world(model, profile);
  constexpr std::uint64_t kCases = 20'000;  // 5 batches of 4096
  constexpr std::uint64_t kSeed = 20030625;

  sim::TrialRunner runner(world, kCases);
  const sim::TrialData reference = runner.run(kSeed, exec::Config{2});
  const sim::TrialData one =
      sim::run_trial_sharded(world, kCases, kSeed, test_options(1));
  const sim::TrialData three =
      sim::run_trial_sharded(world, kCases, kSeed, test_options(3));

  ASSERT_EQ(reference.records.size(), kCases);
  ASSERT_EQ(one.records.size(), kCases);
  ASSERT_EQ(three.records.size(), kCases);
  for (std::size_t i = 0; i < kCases; ++i) {
    const auto& a = reference.records[i];
    const auto& b = one.records[i];
    const auto& c = three.records[i];
    ASSERT_TRUE(a.class_index == b.class_index &&
                a.machine_failed == b.machine_failed &&
                a.human_failed == b.human_failed)
        << "1-shard mismatch at case " << i;
    ASSERT_TRUE(a.class_index == c.class_index &&
                a.machine_failed == c.machine_failed &&
                a.human_failed == c.human_failed)
        << "3-shard mismatch at case " << i;
  }
  expect_no_zombies();
}

core::TradeoffAnalyzer reference_analyzer() {
  core::BinormalMachine machine;
  machine.cancer_class_means = {2.0, 0.8};
  machine.normal_class_means = {-2.0, -0.5};
  core::DemandProfile cancers({"easy", "difficult"}, {0.9, 0.1});
  std::vector<core::HumanFnResponse> fn(2);
  fn[0] = {0.14, 0.18};
  fn[1] = {0.4, 0.9};
  core::DemandProfile normals({"typical", "complex"}, {0.85, 0.15});
  std::vector<core::HumanFpResponse> fp(2);
  fp[0] = {0.10, 0.02};
  fp[1] = {0.35, 0.12};
  return core::TradeoffAnalyzer(std::move(machine), std::move(cancers),
                                std::move(fn), std::move(normals),
                                std::move(fp), 0.01);
}

TEST(ShardDeterminism, SweepPointsAreBitIdenticalAcrossShardCounts) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  std::vector<double> thresholds(1001);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    thresholds[i] = -4.0 + 8.0 * static_cast<double>(i) / 1000.0;
  }
  const auto reference = analyzer.sweep(thresholds, exec::Config{2});
  const auto sharded = core::sweep_sharded(analyzer, thresholds,
                                           test_options(4));
  ASSERT_EQ(sharded.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(sharded[i].threshold, reference[i].threshold);
    EXPECT_EQ(sharded[i].system_fn, reference[i].system_fn);
    EXPECT_EQ(sharded[i].system_fp, reference[i].system_fp);
    EXPECT_EQ(sharded[i].sensitivity, reference[i].sensitivity);
    EXPECT_EQ(sharded[i].ppv, reference[i].ppv);
  }
  expect_no_zombies();
}

TEST(ShardDeterminism, SweepHandlesFewerPointsThanShards) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const std::vector<double> thresholds{-1.0, 0.0, 1.0};
  const auto reference = analyzer.sweep(thresholds, exec::Config{1});
  const auto sharded = core::sweep_sharded(analyzer, thresholds,
                                           test_options(8));
  ASSERT_EQ(sharded.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(sharded[i].system_fn, reference[i].system_fn);
  }
  expect_no_zombies();
}

TEST(ShardDeterminism, MinimiseCostMatchesInProcessGridSearch) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const auto reference =
      analyzer.minimise_cost(500.0, 20.0, -4.0, 4.0, 2001, exec::Config{2});
  const auto sharded = core::minimise_cost_sharded(
      analyzer, 500.0, 20.0, -4.0, 4.0, 2001, test_options(3));
  EXPECT_EQ(sharded.threshold, reference.threshold);
  EXPECT_EQ(sharded.system_fn, reference.system_fn);
  EXPECT_EQ(sharded.system_fp, reference.system_fp);
  expect_no_zombies();
}

TEST(ShardDeterminism, MinimiseCostTiesResolveToEarliestGridPoint) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  // Zero costs make the objective a flat plateau: every grid point ties at
  // cost 0, so the earliest-grid-point rule must pick the very first
  // threshold — in every shard layout, not just in-process.
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const auto reference =
      analyzer.minimise_cost(0.0, 0.0, -4.0, 4.0, 999, exec::Config{2});
  EXPECT_EQ(reference.threshold, -4.0);
  for (const unsigned shards : {2u, 4u, 7u}) {
    const auto sharded = core::minimise_cost_sharded(
        analyzer, 0.0, 0.0, -4.0, 4.0, 999, test_options(shards));
    EXPECT_EQ(sharded.threshold, reference.threshold)
        << "shards: " << shards;
  }
  expect_no_zombies();
}

core::PosteriorModelSampler paper_sampler() {
  core::ClassCounts easy;
  easy.cases = 800;
  easy.machine_failures = 56;
  easy.human_failures_given_machine_failed = 28;
  easy.human_failures_given_machine_succeeded = 40;
  core::ClassCounts difficult;
  difficult.cases = 200;
  difficult.machine_failures = 82;
  difficult.human_failures_given_machine_failed = 74;
  difficult.human_failures_given_machine_succeeded = 30;
  return core::PosteriorModelSampler({"easy", "difficult"},
                                     {easy, difficult});
}

TEST(ShardDeterminism, PosteriorDrawsAreBitIdenticalAcrossShardCounts) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  const core::PosteriorModelSampler sampler = paper_sampler();
  const core::DemandProfile field = core::paper::field_profile();
  constexpr std::size_t kDraws = 1500;  // 3 chunks of 512, last one ragged

  std::vector<double> reference(kDraws);
  stats::Rng reference_rng(42);
  sampler.sample_failure_probabilities(field, reference_rng, reference,
                                       exec::Config{2});

  std::vector<double> sharded(kDraws);
  stats::Rng sharded_rng(42);
  core::sample_failure_probabilities_sharded(sampler, field, sharded_rng,
                                             sharded, test_options(3));

  for (std::size_t i = 0; i < kDraws; ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(sharded[i]),
              std::bit_cast<std::uint64_t>(reference[i]))
        << "draw " << i;
  }
  // Both paths consume exactly one step of the caller's rng.
  EXPECT_EQ(reference_rng.next_u64(), sharded_rng.next_u64());
  expect_no_zombies();
}

TEST(ShardDeterminism, PredictShardedMatchesInProcessPredict) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  const core::PosteriorModelSampler sampler = paper_sampler();
  const core::DemandProfile field = core::paper::field_profile();
  stats::Rng reference_rng(11);
  const auto reference =
      sampler.predict(field, reference_rng, 1024, 0.95, exec::Config{2});
  stats::Rng sharded_rng(11);
  const auto sharded = core::predict_sharded(sampler, field, sharded_rng,
                                             1024, 0.95, test_options(2));
  EXPECT_EQ(sharded.mean, reference.mean);
  EXPECT_EQ(sharded.lower, reference.lower);
  EXPECT_EQ(sharded.upper, reference.upper);
  expect_no_zombies();
}

// --- Fault injection ------------------------------------------------------

TEST(ShardFault, SigkilledWorkerSurfacesAsSignalFailure) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  EnvGuard guard("HMDIV_SHARD_FAULT", "sigkill:1");
  const exec::ShardFailure failure =
      expect_failure("test.echo", test_options(3));
  EXPECT_EQ(failure.kind, exec::ShardFailure::Kind::signal);
  EXPECT_EQ(failure.code, SIGKILL);
  EXPECT_EQ(failure.shard, 1U);
  expect_no_zombies();
}

TEST(ShardFault, ShortWriteSurfacesAsTruncatedStream) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  EnvGuard guard("HMDIV_SHARD_FAULT", "shortwrite:0");
  const exec::ShardFailure failure =
      expect_failure("test.echo", test_options(2));
  EXPECT_EQ(failure.kind, exec::ShardFailure::Kind::truncated);
  EXPECT_EQ(failure.shard, 0U);
  expect_no_zombies();
}

TEST(ShardFault, HangingWorkerHitsTheDeadlineNotForever) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  EnvGuard guard("HMDIV_SHARD_FAULT", "hang:0");
  const auto start = std::chrono::steady_clock::now();
  const exec::ShardFailure failure = expect_failure(
      "test.echo", test_options(2, std::chrono::milliseconds(2'000)));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(failure.kind, exec::ShardFailure::Kind::timeout);
  EXPECT_EQ(failure.shard, 0U);
  EXPECT_LT(elapsed, std::chrono::seconds(30)) << "runner must not hang";
  expect_no_zombies();
}

TEST(ShardFault, NonzeroExitSurfacesAsExitCodeFailure) {
  HMDIV_SKIP_FORK_UNDER_TSAN();
  EnvGuard guard("HMDIV_SHARD_FAULT", "exit:1");
  const exec::ShardFailure failure =
      expect_failure("test.echo", test_options(2));
  EXPECT_EQ(failure.kind, exec::ShardFailure::Kind::exit_code);
  EXPECT_EQ(failure.code, 7);
  EXPECT_EQ(failure.shard, 1U);
  expect_no_zombies();
}

TEST(ShardFault, FailureKindsHaveStableNames) {
  EXPECT_EQ(exec::to_string(exec::ShardFailure::Kind::signal), "signal");
  EXPECT_EQ(exec::to_string(exec::ShardFailure::Kind::truncated),
            "truncated");
  EXPECT_EQ(exec::to_string(exec::ShardFailure::Kind::timeout), "timeout");
  EXPECT_EQ(exec::to_string(exec::ShardFailure::Kind::worker), "worker");
}

}  // namespace
}  // namespace hmdiv
