// Tests for the obs subsystem: counters, histograms, scoped timers, the
// global registry, and the instrumentation macros' runtime gate —
// including thread-safety of concurrent mutation under exec::parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "obs/obs.hpp"

namespace hmdiv {
namespace {

// Each gtest case runs in its own process under ctest, but keep the
// runtime gate off after every test anyway so in-binary runs stay clean.
class ObsGateGuard {
 public:
  ~ObsGateGuard() { obs::set_enabled(false); }
};

TEST(ObsCounter, AddAccumulatesAndResetZeroes) {
  obs::Counter c("c");
  EXPECT_EQ(c.value(), 0U);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42U);
  EXPECT_EQ(c.name(), "c");
  c.reset();
  EXPECT_EQ(c.value(), 0U);
}

TEST(ObsCounter, ConcurrentAddsAreExact) {
  obs::Counter c("c");
  constexpr std::size_t kN = 100'000;
  exec::parallel_for(kN, 256, [&](std::size_t) { c.add(); },
                     exec::Config{8});
  EXPECT_EQ(c.value(), kN);
}

TEST(ObsHistogram, TracksCountSumMinMax) {
  obs::Histogram h("h");
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.min(), 0U);  // empty histogram reads as all-zero
  EXPECT_EQ(h.max(), 0U);
  h.record(7);
  h.record(100);
  h.record(3);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_EQ(h.sum(), 110U);
  EXPECT_EQ(h.min(), 3U);
  EXPECT_EQ(h.max(), 100U);
}

TEST(ObsHistogram, QuantileIsWithinAFactorOfTwo) {
  obs::Histogram h("h");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // The true median is 500; the bucketed answer is its bucket's upper
  // bound, so it lies in [500, 1000).
  const std::uint64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 500U);
  EXPECT_LT(p50, 1000U);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_GE(p99, 990U);
  EXPECT_LE(p99, 2U * 990U);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.0));
  EXPECT_EQ(obs::Histogram("empty").quantile(0.5), 0U);
}

TEST(ObsHistogram, RecordsZeroAndResets) {
  obs::Histogram h("h");
  h.record(0);
  EXPECT_EQ(h.count(), 1U);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 0U);
  h.record(9);
  h.reset();
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.sum(), 0U);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 0U);
  EXPECT_EQ(h.quantile(0.5), 0U);
}

TEST(ObsHistogram, ConcurrentRecordsAreExactOnCountAndSum) {
  obs::Histogram h("h");
  constexpr std::size_t kN = 50'000;
  exec::parallel_for(kN, 128,
                     [&](std::size_t i) { h.record(i % 1024); },
                     exec::Config{8});
  EXPECT_EQ(h.count(), kN);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 1023U);
}

TEST(ObsHistogram, SnapshotQuantileMatchesLiveQuantile) {
  // snapshot_quantile is the report-side twin of Histogram::quantile
  // (used by the serve metrics endpoint for p99.9); over the same bucket
  // counts the two must agree exactly.
  obs::Histogram h("h");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  h.record(1'000'000);  // a tail value so p99.9 and p50 differ
  obs::HistogramSnapshot snap;
  snap.count = h.count();
  snap.max = h.max();
  for (std::size_t b = 0; b < obs::Histogram::kBuckets; ++b) {
    snap.buckets.push_back(h.bucket(b));
  }
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(obs::snapshot_quantile(snap, q), h.quantile(q)) << "q=" << q;
  }
  EXPECT_GT(obs::snapshot_quantile(snap, 0.999),
            obs::snapshot_quantile(snap, 0.5));
}

TEST(ObsHistogram, SnapshotQuantileEdgeCases) {
  const obs::HistogramSnapshot empty;
  EXPECT_EQ(obs::snapshot_quantile(empty, 0.5), 0U);
  // A snapshot without bucket counts (e.g. hand-built) falls back to max.
  obs::HistogramSnapshot bare;
  bare.count = 5;
  bare.max = 1234;
  EXPECT_EQ(obs::snapshot_quantile(bare, 0.99), 1234U);
}

TEST(ObsScopedTimer, DirectHistogramFormAlwaysRecords) {
  obs::Histogram h("h");
  {
    obs::ScopedTimer t(h);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.count(), 1U);
}

TEST(ObsScopedTimer, NamedFormIsInertWhileDisabled) {
  ObsGateGuard guard;
  obs::set_enabled(false);
  obs::Registry::global().reset();
  { obs::ScopedTimer t("obs.test.disabled_timer_ns"); }
  for (const auto& h : obs::registry_snapshot().histograms) {
    EXPECT_NE(h.name, "obs.test.disabled_timer_ns");
  }
}

TEST(ObsRegistry, LookupIsStableAndLazy) {
  ObsGateGuard guard;
  auto& registry = obs::Registry::global();
  obs::Counter& a = registry.counter("obs.test.stable");
  obs::Counter& b = registry.counter("obs.test.stable");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(b.value(), 5U);
  obs::Histogram& h = registry.histogram("obs.test.stable_hist");
  EXPECT_EQ(&h, &registry.histogram("obs.test.stable_hist"));
}

TEST(ObsRegistry, SnapshotReportsSortedMetrics) {
  ObsGateGuard guard;
  auto& registry = obs::Registry::global();
  registry.reset();
  registry.counter("obs.test.zzz").add(1);
  registry.counter("obs.test.aaa").add(2);
  registry.histogram("obs.test.hist").record(16);
  const obs::Snapshot snap = obs::registry_snapshot();
  EXPECT_FALSE(snap.empty());
  // std::map iteration order: sorted by name.
  std::string previous;
  bool saw_aaa = false, saw_zzz = false;
  for (const auto& c : snap.counters) {
    EXPECT_LE(previous, c.name);
    previous = c.name;
    if (c.name == "obs.test.aaa") {
      saw_aaa = true;
      EXPECT_EQ(c.value, 2U);
    }
    if (c.name == "obs.test.zzz") {
      saw_zzz = true;
      EXPECT_EQ(c.value, 1U);
    }
  }
  EXPECT_TRUE(saw_aaa);
  EXPECT_TRUE(saw_zzz);
  bool saw_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "obs.test.hist") {
      saw_hist = true;
      EXPECT_EQ(h.count, 1U);
      EXPECT_EQ(h.sum, 16U);
      EXPECT_GE(h.p50, 16U);
    }
  }
  EXPECT_TRUE(saw_hist);
}

TEST(ObsRegistry, ResetZeroesButKeepsRegistrations) {
  ObsGateGuard guard;
  auto& registry = obs::Registry::global();
  obs::Counter& c = registry.counter("obs.test.reset_me");
  c.add(9);
  registry.reset();
  EXPECT_EQ(c.value(), 0U);  // cached reference survives the reset
  bool found = false;
  for (const auto& snap : obs::registry_snapshot().counters) {
    if (snap.name == "obs.test.reset_me") {
      found = true;
      EXPECT_EQ(snap.value, 0U);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsMacros, DisabledGateMakesCountANoOp) {
  ObsGateGuard guard;
  obs::set_enabled(false);
  obs::Registry::global().reset();
  HMDIV_OBS_COUNT("obs.test.gated", 3);
  for (const auto& c : obs::registry_snapshot().counters) {
    if (c.name == "obs.test.gated") {
      EXPECT_EQ(c.value, 0U);
    }
  }
}

#if HMDIV_OBS
TEST(ObsMacros, EnabledGateCountsAndTimes) {
  ObsGateGuard guard;
  obs::set_enabled(true);
  obs::Registry::global().reset();
  HMDIV_OBS_COUNT("obs.test.macro_counter", 2);
  HMDIV_OBS_COUNT("obs.test.macro_counter", 3);
  { HMDIV_OBS_SCOPED_TIMER("obs.test.macro_timer_ns"); }
  EXPECT_EQ(obs::Registry::global().counter("obs.test.macro_counter").value(),
            5U);
  EXPECT_EQ(
      obs::Registry::global().histogram("obs.test.macro_timer_ns").count(),
      1U);
}

TEST(ObsMacros, CountUnderParallelForIsExact) {
  ObsGateGuard guard;
  obs::set_enabled(true);
  obs::Registry::global().reset();
  constexpr std::size_t kN = 20'000;
  exec::parallel_for(
      kN, 64, [&](std::size_t) { HMDIV_OBS_COUNT("obs.test.parallel", 1); },
      exec::Config{8});
  EXPECT_EQ(obs::Registry::global().counter("obs.test.parallel").value(), kN);
}
#endif  // HMDIV_OBS

// --- Snapshot merge + serialization (the shard engine's obs transport) ----

const obs::HistogramSnapshot* find_histogram(const obs::Snapshot& snap,
                                             const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const obs::CounterSnapshot* find_counter(const obs::Snapshot& snap,
                                         const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

obs::HistogramSnapshot snapshot_of(const obs::Histogram& h) {
  obs::HistogramSnapshot snap;
  snap.name = h.name();
  snap.count = h.count();
  snap.sum = h.sum();
  snap.min = h.min();
  snap.max = h.max();
  snap.buckets.resize(obs::Histogram::kBuckets);
  for (std::size_t b = 0; b < obs::Histogram::kBuckets; ++b) {
    snap.buckets[b] = h.bucket(b);
  }
  return snap;
}

TEST(ObsMerge, HistogramMergeSumsBucketsNotQuantiles) {
  obs::Histogram left("h");
  obs::Histogram right("h");
  // Disjoint magnitude ranges: merging by re-binning derived quantiles
  // would smear one side; summing buckets keeps both exactly.
  left.record(4);
  left.record(5);
  right.record(1 << 20);

  left.merge(snapshot_of(right));
  EXPECT_EQ(left.count(), 3U);
  EXPECT_EQ(left.sum(), 9U + (1U << 20));
  EXPECT_EQ(left.min(), 4U);
  EXPECT_EQ(left.max(), std::uint64_t{1} << 20);
  // Bucket 3 ([4,8)) holds both small values, bucket 21 the large one.
  EXPECT_EQ(left.bucket(3), 2U);
  EXPECT_EQ(left.bucket(21), 1U);
  // The merged p99 bound reflects the large recording, not a re-binned
  // average of the two sides.
  EXPECT_GE(left.quantile(0.99), std::uint64_t{1} << 20);
}

TEST(ObsMerge, HistogramMergeOfEmptySnapshotIsIdentity) {
  obs::Histogram h("h");
  h.record(7);
  obs::Histogram empty("h");
  h.merge(snapshot_of(empty));
  EXPECT_EQ(h.count(), 1U);
  EXPECT_EQ(h.min(), 7U);
  EXPECT_EQ(h.max(), 7U);
}

TEST(ObsMerge, RegistryMergeAddsCountersAndCreatesMissingMetrics) {
  ObsGateGuard guard;
  auto& registry = obs::Registry::global();
  registry.reset();
  registry.counter("obs.test.merge_shared").add(5);

  obs::Snapshot worker;
  worker.counters.push_back({"obs.test.merge_shared", 7});
  worker.counters.push_back({"obs.test.merge_new", 3});
  obs::Histogram worker_hist("obs.test.merge_hist");
  worker_hist.record(32);
  worker.histograms.push_back(snapshot_of(worker_hist));

  registry.merge(worker);
  const obs::Snapshot merged = obs::registry_snapshot();
  const auto* shared = find_counter(merged, "obs.test.merge_shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->value, 12U);
  const auto* created = find_counter(merged, "obs.test.merge_new");
  ASSERT_NE(created, nullptr);
  EXPECT_EQ(created->value, 3U);
  const auto* hist = find_histogram(merged, "obs.test.merge_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1U);
  EXPECT_EQ(hist->sum, 32U);
}

TEST(ObsMerge, SnapshotSerializationRoundTrips) {
  obs::Snapshot snap;
  snap.counters.push_back({"a.counter", 42});
  snap.counters.push_back({"b.counter", 0});
  obs::Histogram hist("a.hist_ns");
  hist.record(0);
  hist.record(1000);
  snap.histograms.push_back(snapshot_of(hist));

  const obs::Snapshot back = obs::parse_snapshot(serialize_snapshot(snap));
  ASSERT_EQ(back.counters.size(), 2U);
  EXPECT_EQ(back.counters[0].name, "a.counter");
  EXPECT_EQ(back.counters[0].value, 42U);
  ASSERT_EQ(back.histograms.size(), 1U);
  EXPECT_EQ(back.histograms[0].name, "a.hist_ns");
  EXPECT_EQ(back.histograms[0].count, 2U);
  EXPECT_EQ(back.histograms[0].sum, 1000U);
  EXPECT_EQ(back.histograms[0].buckets, snap.histograms[0].buckets);
}

TEST(ObsMerge, ParseRejectsTruncatedAndTrailingBytes) {
  obs::Snapshot snap;
  snap.counters.push_back({"c", 1});
  std::vector<std::uint8_t> bytes = obs::serialize_snapshot(snap);
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 2);
  EXPECT_THROW(static_cast<void>(obs::parse_snapshot(truncated)),
               std::runtime_error);
  bytes.push_back(0);
  EXPECT_THROW(static_cast<void>(obs::parse_snapshot(bytes)),
               std::runtime_error);
}

#if HMDIV_OBS
TEST(ObsMerge, MergedWorkerCountsEqualSingleProcessRun) {
  // The shard invariant at the registry level: N workers each tallying a
  // slice under parallel_for, merged into the parent, must equal one
  // process tallying everything. Simulated here with snapshots taken
  // between resets of the global registry.
  ObsGateGuard guard;
  obs::set_enabled(true);
  auto& registry = obs::Registry::global();
  registry.reset();
  constexpr std::size_t kN = 10'000;

  exec::parallel_for(
      kN, 64, [&](std::size_t) { HMDIV_OBS_COUNT("obs.test.sharded", 1); },
      exec::Config{4});
  const obs::Snapshot worker_half = obs::registry_snapshot();
  registry.reset();
  exec::parallel_for(
      kN, 64, [&](std::size_t) { HMDIV_OBS_COUNT("obs.test.sharded", 1); },
      exec::Config{4});
  registry.merge(worker_half);

  EXPECT_EQ(registry.counter("obs.test.sharded").value(), 2 * kN);
}
#endif  // HMDIV_OBS

}  // namespace
}  // namespace hmdiv
