// Tests for the obs subsystem: counters, histograms, scoped timers, the
// global registry, and the instrumentation macros' runtime gate —
// including thread-safety of concurrent mutation under exec::parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "exec/parallel.hpp"
#include "obs/obs.hpp"

namespace hmdiv {
namespace {

// Each gtest case runs in its own process under ctest, but keep the
// runtime gate off after every test anyway so in-binary runs stay clean.
class ObsGateGuard {
 public:
  ~ObsGateGuard() { obs::set_enabled(false); }
};

TEST(ObsCounter, AddAccumulatesAndResetZeroes) {
  obs::Counter c("c");
  EXPECT_EQ(c.value(), 0U);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42U);
  EXPECT_EQ(c.name(), "c");
  c.reset();
  EXPECT_EQ(c.value(), 0U);
}

TEST(ObsCounter, ConcurrentAddsAreExact) {
  obs::Counter c("c");
  constexpr std::size_t kN = 100'000;
  exec::parallel_for(kN, 256, [&](std::size_t) { c.add(); },
                     exec::Config{8});
  EXPECT_EQ(c.value(), kN);
}

TEST(ObsHistogram, TracksCountSumMinMax) {
  obs::Histogram h("h");
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.min(), 0U);  // empty histogram reads as all-zero
  EXPECT_EQ(h.max(), 0U);
  h.record(7);
  h.record(100);
  h.record(3);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_EQ(h.sum(), 110U);
  EXPECT_EQ(h.min(), 3U);
  EXPECT_EQ(h.max(), 100U);
}

TEST(ObsHistogram, QuantileIsWithinAFactorOfTwo) {
  obs::Histogram h("h");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // The true median is 500; the bucketed answer is its bucket's upper
  // bound, so it lies in [500, 1000).
  const std::uint64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 500U);
  EXPECT_LT(p50, 1000U);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_GE(p99, 990U);
  EXPECT_LE(p99, 2U * 990U);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.0));
  EXPECT_EQ(obs::Histogram("empty").quantile(0.5), 0U);
}

TEST(ObsHistogram, RecordsZeroAndResets) {
  obs::Histogram h("h");
  h.record(0);
  EXPECT_EQ(h.count(), 1U);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 0U);
  h.record(9);
  h.reset();
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.sum(), 0U);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 0U);
  EXPECT_EQ(h.quantile(0.5), 0U);
}

TEST(ObsHistogram, ConcurrentRecordsAreExactOnCountAndSum) {
  obs::Histogram h("h");
  constexpr std::size_t kN = 50'000;
  exec::parallel_for(kN, 128,
                     [&](std::size_t i) { h.record(i % 1024); },
                     exec::Config{8});
  EXPECT_EQ(h.count(), kN);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 1023U);
}

TEST(ObsScopedTimer, DirectHistogramFormAlwaysRecords) {
  obs::Histogram h("h");
  {
    obs::ScopedTimer t(h);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.count(), 1U);
}

TEST(ObsScopedTimer, NamedFormIsInertWhileDisabled) {
  ObsGateGuard guard;
  obs::set_enabled(false);
  obs::Registry::global().reset();
  { obs::ScopedTimer t("obs.test.disabled_timer_ns"); }
  for (const auto& h : obs::registry_snapshot().histograms) {
    EXPECT_NE(h.name, "obs.test.disabled_timer_ns");
  }
}

TEST(ObsRegistry, LookupIsStableAndLazy) {
  ObsGateGuard guard;
  auto& registry = obs::Registry::global();
  obs::Counter& a = registry.counter("obs.test.stable");
  obs::Counter& b = registry.counter("obs.test.stable");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(b.value(), 5U);
  obs::Histogram& h = registry.histogram("obs.test.stable_hist");
  EXPECT_EQ(&h, &registry.histogram("obs.test.stable_hist"));
}

TEST(ObsRegistry, SnapshotReportsSortedMetrics) {
  ObsGateGuard guard;
  auto& registry = obs::Registry::global();
  registry.reset();
  registry.counter("obs.test.zzz").add(1);
  registry.counter("obs.test.aaa").add(2);
  registry.histogram("obs.test.hist").record(16);
  const obs::Snapshot snap = obs::registry_snapshot();
  EXPECT_FALSE(snap.empty());
  // std::map iteration order: sorted by name.
  std::string previous;
  bool saw_aaa = false, saw_zzz = false;
  for (const auto& c : snap.counters) {
    EXPECT_LE(previous, c.name);
    previous = c.name;
    if (c.name == "obs.test.aaa") {
      saw_aaa = true;
      EXPECT_EQ(c.value, 2U);
    }
    if (c.name == "obs.test.zzz") {
      saw_zzz = true;
      EXPECT_EQ(c.value, 1U);
    }
  }
  EXPECT_TRUE(saw_aaa);
  EXPECT_TRUE(saw_zzz);
  bool saw_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "obs.test.hist") {
      saw_hist = true;
      EXPECT_EQ(h.count, 1U);
      EXPECT_EQ(h.sum, 16U);
      EXPECT_GE(h.p50, 16U);
    }
  }
  EXPECT_TRUE(saw_hist);
}

TEST(ObsRegistry, ResetZeroesButKeepsRegistrations) {
  ObsGateGuard guard;
  auto& registry = obs::Registry::global();
  obs::Counter& c = registry.counter("obs.test.reset_me");
  c.add(9);
  registry.reset();
  EXPECT_EQ(c.value(), 0U);  // cached reference survives the reset
  bool found = false;
  for (const auto& snap : obs::registry_snapshot().counters) {
    if (snap.name == "obs.test.reset_me") {
      found = true;
      EXPECT_EQ(snap.value, 0U);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsMacros, DisabledGateMakesCountANoOp) {
  ObsGateGuard guard;
  obs::set_enabled(false);
  obs::Registry::global().reset();
  HMDIV_OBS_COUNT("obs.test.gated", 3);
  for (const auto& c : obs::registry_snapshot().counters) {
    if (c.name == "obs.test.gated") {
      EXPECT_EQ(c.value, 0U);
    }
  }
}

#if HMDIV_OBS
TEST(ObsMacros, EnabledGateCountsAndTimes) {
  ObsGateGuard guard;
  obs::set_enabled(true);
  obs::Registry::global().reset();
  HMDIV_OBS_COUNT("obs.test.macro_counter", 2);
  HMDIV_OBS_COUNT("obs.test.macro_counter", 3);
  { HMDIV_OBS_SCOPED_TIMER("obs.test.macro_timer_ns"); }
  EXPECT_EQ(obs::Registry::global().counter("obs.test.macro_counter").value(),
            5U);
  EXPECT_EQ(
      obs::Registry::global().histogram("obs.test.macro_timer_ns").count(),
      1U);
}

TEST(ObsMacros, CountUnderParallelForIsExact) {
  ObsGateGuard guard;
  obs::set_enabled(true);
  obs::Registry::global().reset();
  constexpr std::size_t kN = 20'000;
  exec::parallel_for(
      kN, 64, [&](std::size_t) { HMDIV_OBS_COUNT("obs.test.parallel", 1); },
      exec::Config{8});
  EXPECT_EQ(obs::Registry::global().counter("obs.test.parallel").value(), kN);
}
#endif  // HMDIV_OBS

}  // namespace
}  // namespace hmdiv
