// Unit + integration tests for the screening programme layer.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "screening/metrics.hpp"
#include "screening/policies.hpp"
#include "screening/population.hpp"
#include "screening/programme.hpp"
#include "sim/feature_world.hpp"

namespace hmdiv::screening {
namespace {

TEST(Metrics, DerivedFromCounts) {
  ConfusionCounts c;
  c.true_positives = 90;
  c.false_negatives = 10;
  c.false_positives = 50;
  c.true_negatives = 9850;
  const auto m = ProgrammeMetrics::from_counts(c, 2.0);
  EXPECT_NEAR(m.sensitivity, 0.9, 1e-12);
  EXPECT_NEAR(m.specificity, 9850.0 / 9900.0, 1e-12);
  EXPECT_NEAR(m.recall_rate, 140.0 / 10000.0, 1e-12);
  EXPECT_NEAR(m.ppv, 90.0 / 140.0, 1e-12);
  EXPECT_NEAR(m.cancer_detection_rate_per_1000, 9.0, 1e-12);
  EXPECT_EQ(m.readings_per_case, 2.0);
}

TEST(Metrics, EmptyDenominatorsAreUndefinedNotZero) {
  // A rate over zero observations is unknown; a 0.0 default would read as
  // a real (and alarming) measurement. from_counts reports NaN instead.
  const auto m = ProgrammeMetrics::from_counts(ConfusionCounts{}, 1.0);
  EXPECT_TRUE(std::isnan(m.sensitivity));
  EXPECT_TRUE(std::isnan(m.specificity));
  EXPECT_TRUE(std::isnan(m.recall_rate));
  EXPECT_TRUE(std::isnan(m.ppv));
  EXPECT_TRUE(std::isnan(m.cancer_detection_rate_per_1000));
  EXPECT_EQ(m.readings_per_case, 1.0);
}

TEST(Metrics, PartialZeroDenominatorsOnlyBlankTheAffectedRates) {
  // All-healthy population, nothing recalled: sensitivity and PPV are
  // undefined, but specificity and the population rates are real numbers.
  ConfusionCounts c;
  c.true_negatives = 100;
  const auto m = ProgrammeMetrics::from_counts(c, 1.0);
  EXPECT_TRUE(std::isnan(m.sensitivity));
  EXPECT_TRUE(std::isnan(m.ppv));
  EXPECT_EQ(m.specificity, 1.0);
  EXPECT_EQ(m.recall_rate, 0.0);
  EXPECT_EQ(m.cancer_detection_rate_per_1000, 0.0);
}

TEST(CostModel, ComposesLinearly) {
  CostModel costs;
  costs.cost_per_reading = 2.0;
  costs.cost_per_recall = 10.0;
  costs.cost_per_missed_cancer = 100.0;
  costs.cost_per_case_cadt = 0.5;
  ProgrammeMetrics m;
  m.readings_per_case = 2.0;
  m.recall_rate = 0.05;
  m.sensitivity = 0.9;
  const double without = costs.cost_per_case(m, 0.01, false);
  EXPECT_NEAR(without, 2.0 * 2.0 + 0.05 * 10.0 + 0.01 * 0.1 * 100.0, 1e-12);
  EXPECT_NEAR(costs.cost_per_case(m, 0.01, true), without + 0.5, 1e-12);
  EXPECT_THROW(static_cast<void>(costs.cost_per_case(m, 1.5, false)),
               std::invalid_argument);
}

TEST(Population, ValidatesPrevalence) {
  EXPECT_THROW(PopulationGenerator::reference(0.0), std::invalid_argument);
  EXPECT_THROW(PopulationGenerator::reference(1.0), std::invalid_argument);
}

TEST(Population, PrevalenceIsRespected) {
  auto population = PopulationGenerator::reference(0.05);
  stats::Rng rng(41);
  int cancers = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    cancers += population.generate(rng).has_cancer ? 1 : 0;
  }
  EXPECT_NEAR(cancers / static_cast<double>(n), 0.05, 0.005);
}

// Pull the reference reader/CADT from the sim fixture.
sim::FeatureWorld fixture() { return sim::reference_feature_world(); }

TEST(Policies, StandardSuiteIsComplete) {
  const auto world = fixture();
  const auto policies = standard_policies(world.reader(), world.cadt());
  EXPECT_EQ(policies.size(), 7u);
  for (const auto& p : policies) EXPECT_FALSE(p->name().empty());
}

TEST(Programme, RunProducesConsistentCounts) {
  const auto world = fixture();
  SingleReaderPolicy policy(world.reader());
  stats::Rng rng(42);
  const auto result = run_programme(PopulationGenerator::reference(0.01),
                                    policy, 20000, CostModel{}, rng);
  EXPECT_EQ(result.counts.total(), 20000u);
  EXPECT_GT(result.metrics.specificity, 0.5);
  EXPECT_GT(result.cost_per_case, 0.0);
}

TEST(Programme, CadtImprovesSensitivityAtSomeSpecificityCost) {
  const auto world = fixture();
  // Enriched prevalence so sensitivity estimates are tight enough.
  auto population = PopulationGenerator::reference(0.3);
  SingleReaderPolicy alone(world.reader());
  ReaderWithCadtPolicy aided(world.reader(), world.cadt());
  stats::Rng rng(43);
  stats::Rng rng2 = rng.split(99);
  const auto r_alone =
      run_programme(population, alone, 60000, CostModel{}, rng);
  const auto r_aided =
      run_programme(population, aided, 60000, CostModel{}, rng2);
  EXPECT_GT(r_aided.metrics.sensitivity, r_alone.metrics.sensitivity);
  EXPECT_LE(r_aided.metrics.specificity, r_alone.metrics.specificity + 0.01);
}

TEST(Programme, DoubleReadingBeatsSingleOnSensitivity) {
  const auto world = fixture();
  auto population = PopulationGenerator::reference(0.3);
  SingleReaderPolicy single(world.reader());
  DoubleReadingPolicy dbl(world.reader(), world.reader());
  stats::Rng rng(44);
  stats::Rng rng2 = rng.split(98);
  const auto r_single =
      run_programme(population, single, 60000, CostModel{}, rng);
  const auto r_double =
      run_programme(population, dbl, 60000, CostModel{}, rng2);
  EXPECT_GT(r_double.metrics.sensitivity, r_single.metrics.sensitivity);
  // Recall-if-either costs specificity.
  EXPECT_LT(r_double.metrics.specificity, r_single.metrics.specificity);
  EXPECT_EQ(r_double.metrics.readings_per_case, 2.0);
}

TEST(Programme, ArbitrationRecoversSpecificity) {
  const auto world = fixture();
  auto population = PopulationGenerator::reference(0.1);
  DoubleReadingPolicy recall_either(world.reader(), world.reader());
  DoubleReadingPolicy arbitrated(world.reader(), world.reader(),
                                 world.reader(), "arbitrated");
  stats::Rng rng(45);
  stats::Rng rng2 = rng.split(97);
  const auto r_either =
      run_programme(population, recall_either, 60000, CostModel{}, rng);
  const auto r_arb =
      run_programme(population, arbitrated, 60000, CostModel{}, rng2);
  EXPECT_GT(r_arb.metrics.specificity, r_either.metrics.specificity);
  EXPECT_LE(r_arb.metrics.sensitivity, r_either.metrics.sensitivity + 0.01);
  EXPECT_GT(r_arb.metrics.readings_per_case, 2.0);
}

TEST(Programme, ComparePoliciesIsDeterministicInSeed) {
  const auto world = fixture();
  const auto population = PopulationGenerator::reference(0.05);
  CostModel costs;
  auto run_once = [&](std::uint64_t seed) {
    auto policies = standard_policies(world.reader(), world.cadt());
    stats::Rng rng(seed);
    return compare_policies(population, policies, 5000, costs, rng);
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].counts.true_positives, b[i].counts.true_positives) << i;
    EXPECT_EQ(a[i].counts.false_positives, b[i].counts.false_positives) << i;
  }
}

TEST(Programme, RejectsZeroCases) {
  const auto world = fixture();
  SingleReaderPolicy policy(world.reader());
  stats::Rng rng(46);
  EXPECT_THROW(static_cast<void>(run_programme(
                   PopulationGenerator::reference(0.01), policy, 0,
                   CostModel{}, rng)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::screening
