// Test-suite entry point. Replaces GTest::gtest_main so the test binary
// can serve as its own shard worker: ShardRunner re-execs the running
// executable with a hidden flag, and that re-entry must be handled before
// GoogleTest touches argv (it would otherwise abort on the unknown flag).
#include <gtest/gtest.h>

#include "exec/shard.hpp"

int main(int argc, char** argv) {
  if (hmdiv::exec::shard_worker_requested(argc, argv)) {
    return hmdiv::exec::shard_worker_main();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
