// Unit tests for stats/bootstrap.hpp.
#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace hmdiv::stats {
namespace {

std::vector<double> normal_sample(double mu, double sigma, int n, Rng& rng) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(rng.normal(mu, sigma));
  return out;
}

TEST(Bootstrap, MeanIntervalCoversTruth) {
  Rng rng(77);
  const auto sample = normal_sample(3.0, 1.0, 400, rng);
  const auto result = bootstrap_percentile(
      sample, [](std::span<const double> s) { return mean(s); }, rng, 1500);
  EXPECT_NEAR(result.estimate, 3.0, 0.2);
  EXPECT_LT(result.lower, 3.0);
  EXPECT_GT(result.upper, 3.0);
}

TEST(Bootstrap, StandardErrorMatchesTheory) {
  Rng rng(78);
  const int n = 500;
  const auto sample = normal_sample(0.0, 2.0, n, rng);
  const auto result = bootstrap_percentile(
      sample, [](std::span<const double> s) { return mean(s); }, rng, 3000);
  // SE(mean) = sigma / sqrt(n) ~ 0.089.
  EXPECT_NEAR(result.standard_error, 2.0 / std::sqrt(n), 0.02);
}

TEST(Bootstrap, DegenerateSampleGivesZeroWidth) {
  Rng rng(79);
  const std::vector<double> sample(50, 1.5);
  const auto result = bootstrap_percentile(
      sample, [](std::span<const double> s) { return mean(s); }, rng, 200);
  EXPECT_EQ(result.estimate, 1.5);
  EXPECT_EQ(result.lower, 1.5);
  EXPECT_EQ(result.upper, 1.5);
  EXPECT_EQ(result.standard_error, 0.0);
}

TEST(Bootstrap, RejectsBadArguments) {
  Rng rng(80);
  const std::vector<double> empty;
  const std::vector<double> ok{1.0, 2.0};
  const auto stat = [](std::span<const double> s) { return mean(s); };
  EXPECT_THROW(bootstrap_percentile(empty, stat, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_percentile(ok, stat, rng, 0), std::invalid_argument);
  EXPECT_THROW(bootstrap_percentile(ok, stat, rng, 100, 1.5),
               std::invalid_argument);
}

TEST(BootstrapPaired, CorrelationIntervalCoversTruth) {
  Rng rng(81);
  // y = 0.8 x + noise: population correlation 0.8/sqrt(0.64+0.36) = 0.8.
  std::vector<double> x, y;
  for (int i = 0; i < 600; ++i) {
    const double xi = rng.normal();
    x.push_back(xi);
    y.push_back(0.8 * xi + 0.6 * rng.normal());
  }
  const auto result = bootstrap_paired(
      x, y,
      [](std::span<const double> a, std::span<const double> b) {
        return correlation(a, b);
      },
      rng, 1500);
  EXPECT_NEAR(result.estimate, 0.8, 0.08);
  EXPECT_LT(result.lower, 0.8);
  EXPECT_GT(result.upper, result.lower);
}

TEST(BootstrapPaired, RejectsSizeMismatch) {
  Rng rng(82);
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(bootstrap_paired(
                   x, y,
                   [](std::span<const double>, std::span<const double>) {
                     return 0.0;
                   },
                   rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::stats
