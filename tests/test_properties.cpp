// Cross-cutting property tests (parameterized sweeps) for the core models:
// linearity, monotonicity, and serialization invariants that must hold for
// *every* model, not just the paper's example.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dual_model.hpp"
#include "core/model_io.hpp"
#include "core/sequential_model.hpp"
#include "core/tradeoff.hpp"
#include "rbd/structure.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace hmdiv {
namespace {

using core::ClassConditional;
using core::DemandProfile;
using core::SequentialModel;

SequentialModel random_model(stats::Rng& rng, std::size_t classes) {
  std::vector<std::string> names;
  std::vector<ClassConditional> params;
  for (std::size_t x = 0; x < classes; ++x) {
    names.push_back("c" + std::to_string(x));
    ClassConditional c;
    c.p_machine_fails = rng.uniform();
    c.p_human_fails_given_machine_fails = rng.uniform();
    c.p_human_fails_given_machine_succeeds = rng.uniform();
    params.push_back(c);
  }
  return SequentialModel(std::move(names), std::move(params));
}

DemandProfile random_profile(stats::Rng& rng,
                             const std::vector<std::string>& names) {
  std::vector<double> weights;
  weights.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    weights.push_back(rng.uniform() + 0.01);
  }
  return DemandProfile::from_weights(names, std::move(weights));
}

class ModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

/// Eq. (8) is linear in the demand profile: blending two profiles blends
/// the failure probabilities — the algebra behind trial-to-field
/// extrapolation being a simple re-weighting.
TEST_P(ModelProperty, FailureIsLinearInProfileBlend) {
  stats::Rng rng(GetParam());
  const auto model = random_model(rng, 2 + rng.uniform_index(5));
  const auto a = random_profile(rng, model.class_names());
  const auto b = random_profile(rng, model.class_names());
  for (const double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double blended =
        model.system_failure_probability(a.blend(b, w));
    const double expected = (1.0 - w) * model.system_failure_probability(a) +
                            w * model.system_failure_probability(b);
    EXPECT_NEAR(blended, expected, 1e-12) << w;
  }
}

/// PHf is non-decreasing in every conditional failure parameter.
TEST_P(ModelProperty, FailureIsMonotoneInHumanParameters) {
  stats::Rng rng(GetParam() + 1000);
  const auto model = random_model(rng, 3);
  const auto profile = random_profile(rng, model.class_names());
  const double base = model.system_failure_probability(profile);
  // Worsen the readers: failure must not decrease.
  EXPECT_GE(model.with_reader_improvement(1.2)
                .system_failure_probability(profile),
            base - 1e-12);
  // Improve the readers: failure must not increase.
  EXPECT_LE(model.with_reader_improvement(0.8)
                .system_failure_probability(profile),
            base + 1e-12);
}

/// Machine improvement helps iff t(x) >= 0; with t(x) < 0 on some class,
/// improving the machine there can hurt (prompts distract) — exactly what
/// Eq. (9)'s slope says.
TEST_P(ModelProperty, MachineImprovementFollowsTheSignOfT) {
  stats::Rng rng(GetParam() + 2000);
  const auto model = random_model(rng, 4);
  const auto profile = random_profile(rng, model.class_names());
  const double base = model.system_failure_probability(profile);
  for (std::size_t x = 0; x < model.class_count(); ++x) {
    const double improved = model.with_machine_improvement(x, 0.5)
                                .system_failure_probability(profile);
    if (model.importance_index(x) >= 0.0) {
      EXPECT_LE(improved, base + 1e-12) << x;
    } else {
      EXPECT_GE(improved, base - 1e-12) << x;
    }
  }
}

/// Serialization round-trips preserve every prediction bit-for-bit.
TEST_P(ModelProperty, SerializationRoundTripIsLossless) {
  stats::Rng rng(GetParam() + 3000);
  const auto model = random_model(rng, 2 + rng.uniform_index(4));
  const auto profile = random_profile(rng, model.class_names());
  const auto model_copy = core::parse_sequential_model(core::to_text(model));
  const auto profile_copy =
      core::parse_demand_profile(core::to_text(profile));
  EXPECT_DOUBLE_EQ(model_copy.system_failure_probability(profile_copy),
                   model.system_failure_probability(profile));
  EXPECT_DOUBLE_EQ(model_copy.decompose(profile_copy).covariance,
                   model.decompose(profile).covariance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty,
                         ::testing::Range<std::uint64_t>(0, 16));

/// k-out-of-n of identical components equals the binomial tail.
class KOutOfNProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(KOutOfNProperty, MatchesBinomialTail) {
  const auto [n, k] = GetParam();
  std::vector<rbd::Structure> children;
  for (std::size_t i = 0; i < n; ++i) {
    children.push_back(rbd::Structure::component(i));
  }
  const auto structure = rbd::Structure::k_out_of_n(k, std::move(children));
  for (const double p : {0.1, 0.5, 0.9}) {
    const std::vector<double> success(n, p);
    // P(at least k of n work) = 1 − P(X <= k−1), X ~ Binomial(n, p).
    const double expected =
        1.0 - stats::binomial_cdf(n, p, k - 1);
    EXPECT_NEAR(structure.success_probability(success), expected, 1e-12)
        << "n=" << n << " k=" << k << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KOutOfNProperty,
    ::testing::Values(std::make_tuple(3, 1), std::make_tuple(3, 2),
                      std::make_tuple(3, 3), std::make_tuple(5, 3),
                      std::make_tuple(7, 4), std::make_tuple(10, 8)));

/// TradeoffAnalyzer monotonicity holds for random configurations, not just
/// the bench's reference one.
class TradeoffProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TradeoffProperty, SystemRatesMonotoneInThreshold) {
  stats::Rng rng(GetParam() + 5000);
  core::BinormalMachine machine;
  machine.cancer_class_means = {rng.uniform(0.5, 2.5), rng.uniform(0.0, 1.5)};
  machine.normal_class_means = {rng.uniform(-2.5, -0.5),
                                rng.uniform(-1.5, 0.0)};
  const DemandProfile cancers({"a", "b"}, {0.7, 0.3});
  const DemandProfile normals({"c", "d"}, {0.8, 0.2});
  std::vector<core::HumanFnResponse> fn(2);
  for (auto& r : fn) {
    r.p_fail_given_machine_prompted = rng.uniform(0.0, 0.4);
    r.p_fail_given_machine_silent =
        r.p_fail_given_machine_prompted + rng.uniform(0.0, 0.5);
  }
  std::vector<core::HumanFpResponse> fp(2);
  for (auto& r : fp) {
    r.p_recall_given_machine_silent = rng.uniform(0.0, 0.2);
    r.p_recall_given_machine_prompted =
        r.p_recall_given_machine_silent + rng.uniform(0.0, 0.5);
  }
  const core::TradeoffAnalyzer analyzer(machine, cancers, fn, normals, fp,
                                        0.01);
  double previous_fn = -1.0, previous_fp = 2.0;
  for (double threshold = -2.5; threshold <= 2.5; threshold += 0.5) {
    const auto point = analyzer.evaluate(threshold);
    EXPECT_GE(point.system_fn, previous_fn - 1e-12);
    EXPECT_LE(point.system_fp, previous_fp + 1e-12);
    previous_fn = point.system_fn;
    previous_fp = point.system_fp;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TradeoffProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

/// DualModel consistency for random two-sided models.
class DualProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualProperty, PerformanceIdentities) {
  stats::Rng rng(GetParam() + 7000);
  const auto fn = random_model(rng, 2);
  const auto fp = random_model(rng, 3);
  const auto fn_profile = random_profile(rng, fn.class_names());
  const auto fp_profile = random_profile(rng, fp.class_names());
  const double prevalence = rng.uniform(0.001, 0.2);
  const core::DualModel dual(fn, fn_profile, fp, fp_profile, prevalence);
  const auto p = dual.performance();
  EXPECT_NEAR(p.recall_rate,
              prevalence * p.sensitivity +
                  (1.0 - prevalence) * p.false_positive_rate,
              1e-12);
  EXPECT_GE(p.ppv, 0.0);
  EXPECT_LE(p.ppv, 1.0);
  EXPECT_GE(p.npv, 0.0);
  EXPECT_LE(p.npv, 1.0);
  // Law of total probability: P(cancer) decomposes over recall outcome.
  const double via_recall = p.ppv * p.recall_rate +
                            (1.0 - p.npv) * (1.0 - p.recall_rate);
  EXPECT_NEAR(via_recall, prevalence, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace hmdiv
