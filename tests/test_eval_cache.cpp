// Tests for core::EvalCache — the keyed memoisation cache shared across
// concurrent serve requests. Covers the single-threaded contract (exact
// keying, FIFO eviction, capacity semantics, clear) and the concurrent
// hit/miss surface the serve layer exercises: these tests run under the
// ThreadSanitizer CI job (regex `EvalCache`), which is what pins the
// absence of data races / torn reads in the sharded lookup path.
#include "core/eval_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "alloc_count.hpp"

namespace hmdiv {
namespace {

using Cache = core::EvalCache<double>;

std::vector<double> key_of(double a, double b = 0.0) { return {a, b}; }

TEST(EvalCache, DisabledByDefault) {
  Cache cache;
  EXPECT_FALSE(cache.enabled());
  cache.insert(key_of(1), 10.0);
  EXPECT_FALSE(cache.find(key_of(1)).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EvalCache, ExactKeyLookup) {
  Cache cache;
  cache.set_capacity(4);
  cache.insert(key_of(1, 2), 12.0);
  ASSERT_TRUE(cache.find(key_of(1, 2)).has_value());
  EXPECT_EQ(*cache.find(key_of(1, 2)), 12.0);
  // Any bitwise difference is a different query (one-ulp perturbation;
  // an offset below eps would round back to the same double).
  EXPECT_FALSE(
      cache.find(key_of(1, std::nextafter(2.0, 3.0))).has_value());
  EXPECT_FALSE(cache.find(key_of(2, 1)).has_value());
  EXPECT_FALSE(cache.find(std::vector<double>{1.0}).has_value());
}

TEST(EvalCache, SpanAndVectorKeysAgree) {
  Cache cache;
  cache.set_capacity(4);
  const std::vector<double> key = key_of(3, 4);
  cache.insert(std::span<const double>(key), 34.0);
  EXPECT_EQ(*cache.find(key), 34.0);
  EXPECT_EQ(*cache.find(std::span<const double>(key)), 34.0);
}

TEST(EvalCache, SmallCapacityEvictsFifo) {
  // Below kSegments everything lives in one segment, so eviction order is
  // exactly global FIFO — the order the pre-sharding cache guaranteed.
  Cache cache;
  cache.set_capacity(2);
  cache.insert(key_of(1), 1.0);
  cache.insert(key_of(2), 2.0);
  cache.insert(key_of(3), 3.0);
  EXPECT_FALSE(cache.find(key_of(1)).has_value());
  EXPECT_TRUE(cache.find(key_of(2)).has_value());
  EXPECT_TRUE(cache.find(key_of(3)).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(EvalCache, ShrinkKeepsNewestEntries) {
  Cache cache;
  cache.set_capacity(4);
  for (int i = 0; i < 4; ++i) cache.insert(key_of(i), i);
  cache.set_capacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.find(key_of(0)).has_value());
  EXPECT_FALSE(cache.find(key_of(1)).has_value());
  EXPECT_TRUE(cache.find(key_of(2)).has_value());
  EXPECT_TRUE(cache.find(key_of(3)).has_value());
}

TEST(EvalCache, CapacityZeroDropsEverything) {
  Cache cache;
  cache.set_capacity(4);
  cache.insert(key_of(1), 1.0);
  cache.set_capacity(0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.find(key_of(1)).has_value());
}

TEST(EvalCache, LargeCapacityIsShardedButBounded) {
  Cache cache;
  const std::size_t capacity = 64;
  cache.set_capacity(capacity);
  for (int i = 0; i < 1000; ++i) cache.insert(key_of(i), i);
  EXPECT_LE(cache.size(), capacity);
  EXPECT_GE(cache.size(), capacity / 2);  // segments fill evenly-ish
  // Recent inserts that survived must read back their own value.
  std::size_t hits = 0;
  for (int i = 990; i < 1000; ++i) {
    if (const auto hit = cache.find(key_of(i))) {
      ++hits;
      EXPECT_EQ(*hit, static_cast<double>(i));
    }
  }
  EXPECT_GT(hits, 0u);
}

TEST(EvalCache, GrowAcrossLayoutBoundaryKeepsEntries) {
  Cache cache;
  cache.set_capacity(4);  // single-segment layout
  for (int i = 0; i < 4; ++i) cache.insert(key_of(i), i);
  cache.set_capacity(64);  // sharded layout: all four must survive
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache.find(key_of(i)).has_value()) << i;
    EXPECT_EQ(*cache.find(key_of(i)), static_cast<double>(i));
  }
}

TEST(EvalCache, ClearEmptiesButKeepsCapacity) {
  Cache cache;
  cache.set_capacity(8);
  cache.insert(key_of(1), 1.0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.capacity(), 8u);
  cache.insert(key_of(1), 2.0);
  EXPECT_EQ(*cache.find(key_of(1)), 2.0);
}

TEST(EvalCache, SpanHitPathDoesNotAllocate) {
  Cache cache;
  cache.set_capacity(16);
  std::vector<double> key = key_of(7, 9);
  cache.insert(key, 79.0);
  // Warm once (first probe may fault in nothing, but keep the pattern of
  // the other zero-alloc tests: measure after a warm-up call).
  ASSERT_TRUE(cache.find(std::span<const double>(key)).has_value());
  const std::uint64_t before = test::allocation_count();
  for (int i = 0; i < 100; ++i) {
    const auto hit = cache.find(std::span<const double>(key));
    ASSERT_TRUE(hit.has_value());
    ASSERT_EQ(*hit, 79.0);
  }
  EXPECT_EQ(test::allocation_count(), before);
}

// The serve layer's sharing pattern: many threads issuing a mix of hits,
// misses and inserts against one cache, while another thread resizes and
// clears it (model reload). Values are a pure function of the key, so any
// torn read or cross-key aliasing surfaces as a wrong value; TSan covers
// the data-race side.
TEST(EvalCache, ConcurrentHitMissInsertIsRaceFree) {
  Cache cache;
  cache.set_capacity(64);
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cache, &hits, &failed] {
      for (int i = 0; i < kOps; ++i) {
        const double a = static_cast<double>((t * 31 + i) % 48);
        const double b = static_cast<double>(i % 7);
        const double expected = a * 1000.0 + b;
        const std::vector<double> key = {a, b};
        if (i % 3 == 0) {
          cache.insert(key, expected);
        } else if (const auto hit =
                       cache.find(std::span<const double>(key))) {
          hits.fetch_add(1, std::memory_order_relaxed);
          if (*hit != expected) failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&cache] {
    for (int i = 0; i < 200; ++i) {
      cache.set_capacity(i % 2 == 0 ? 16 : 64);
      if (i % 50 == 49) cache.clear();
      std::this_thread::yield();
    }
    cache.set_capacity(64);
  });
  for (auto& thread : threads) thread.join();

  EXPECT_FALSE(failed.load()) << "a cache hit returned a wrong value";
  EXPECT_GT(hits.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());
}

}  // namespace
}  // namespace hmdiv
