// Tests for the batched uncertainty engine (PR 5): the bulk
// fill_gamma/fill_beta/fill_normal_icdf kernels, the fused
// sample-and-evaluate posterior path, and its contracts — statistical
// equivalence with the scalar reference, bit-identical results across
// thread counts, zero steady-state heap allocations, and NaN propagation.
//
// Suite names deliberately start with Uncertainty/Bootstrap so the TSan CI
// job (-R '…|Uncertainty|Bootstrap') runs all of them.
#include "core/uncertainty.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "alloc_count.hpp"
#include "core/paper_example.hpp"
#include "exec/config.hpp"
#include "stats/bootstrap.hpp"
#include "stats/hypothesis.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"

namespace hmdiv::core {
namespace {

// House convention for stochastic assertions (see test_batch_sim.cpp):
// each statistical test uses a fixed seed, so it either always passes or
// always fails, and the acceptance threshold is far below any plausible
// false-alarm appetite.
constexpr double kAlpha = 1e-3;

std::vector<ClassCounts> paper_counts() {
  ClassCounts easy;
  easy.cases = 800;
  easy.machine_failures = 56;
  easy.human_failures_given_machine_failed = 28;
  easy.human_failures_given_machine_succeeded = 40;
  ClassCounts difficult;
  difficult.cases = 200;
  difficult.machine_failures = 82;
  difficult.human_failures_given_machine_failed = 74;
  difficult.human_failures_given_machine_succeeded = 30;
  return {easy, difficult};
}

PosteriorModelSampler paper_sampler() {
  return PosteriorModelSampler({"easy", "difficult"}, paper_counts());
}

/// Two-sample z-test on means (unequal variances); returns the p-value.
double mean_z_test_p(std::span<const double> a, std::span<const double> b) {
  auto moments = [](std::span<const double> s) {
    double sum = 0.0;
    for (const double v : s) sum += v;
    const double mean = sum / static_cast<double>(s.size());
    double m2 = 0.0;
    for (const double v : s) m2 += (v - mean) * (v - mean);
    return std::pair{mean, m2 / static_cast<double>(s.size() - 1)};
  };
  const auto [ma, va] = moments(a);
  const auto [mb, vb] = moments(b);
  const double se = std::sqrt(va / static_cast<double>(a.size()) +
                              vb / static_cast<double>(b.size()));
  const double z = (ma - mb) / se;
  return 2.0 * (1.0 - stats::normal_cdf(std::fabs(z)));
}

// ---------------------------------------------------------------------------
// Statistical equivalence: batched kernels vs their scalar references.
// ---------------------------------------------------------------------------

TEST(UncertaintyEngineStats, FillNormalIcdfMatchesNormalCdf) {
  stats::Rng rng(2024);
  std::vector<double> draws(40'000);
  rng.fill_normal_icdf(draws);
  const auto ks = stats::kolmogorov_smirnov_test(
      draws, [](double z) { return stats::normal_cdf(z); });
  EXPECT_GT(ks.p_value, kAlpha) << "KS statistic " << ks.statistic;
}

TEST(UncertaintyEngineStats, FillGammaMatchesGammaCdf) {
  // One shape per regime: large (the posterior shapes of an 800-case
  // class), moderate, and boosted (< 1, exercised via Gamma(shape+1)·u^(1/k)).
  for (const double shape : {744.5, 2.5, 0.5}) {
    stats::Rng rng(77);
    const stats::Rng::GammaPrep prep(shape);
    std::vector<double> draws(40'000);
    rng.fill_gamma(prep, draws);
    const auto ks = stats::kolmogorov_smirnov_test(draws, [&](double x) {
      return x <= 0.0 ? 0.0
                      : stats::regularized_lower_incomplete_gamma(shape, x);
    });
    EXPECT_GT(ks.p_value, kAlpha)
        << "shape " << shape << " KS statistic " << ks.statistic;
  }
}

TEST(UncertaintyEngineStats, FillBetaMatchesBetaCdf) {
  const std::pair<double, double> shapes[] = {{56.5, 744.5}, {2.5, 3.5},
                                              {0.5, 0.5}};
  for (const auto& [a, b] : shapes) {
    stats::Rng rng(123);
    const stats::Rng::GammaPrep prep_a(a);
    const stats::Rng::GammaPrep prep_b(b);
    std::vector<double> draws(40'000);
    rng.fill_beta(prep_a, prep_b, draws);
    const auto ks = stats::kolmogorov_smirnov_test(
        draws, [&](double x) { return stats::beta_cdf(a, b, x); });
    EXPECT_GT(ks.p_value, kAlpha)
        << "Beta(" << a << "," << b << ") KS statistic " << ks.statistic;
  }
}

TEST(UncertaintyEngineStats, FillBetaMatchesScalarBetaDraws) {
  // Two-sample KS: the batched kernel against the scalar beta() the
  // per-draw reference path uses, same shapes, independent streams.
  const stats::Rng::GammaPrep prep_a(82.5), prep_b(118.5);
  stats::Rng rng_batch(5), rng_scalar(6);
  std::vector<double> batched(30'000), scalar(30'000);
  rng_batch.fill_beta(prep_a, prep_b, batched);
  for (double& v : scalar) v = rng_scalar.beta(prep_a, prep_b);
  const auto ks = stats::kolmogorov_smirnov_two_sample(batched, scalar);
  EXPECT_GT(ks.p_value, kAlpha) << "KS statistic " << ks.statistic;
}

TEST(UncertaintyEngineStats, BatchedPosteriorMatchesScalarReference) {
  // The full fused path vs the pre-batching scalar loop: sample the
  // posterior predictive failure probability both ways and compare with a
  // two-sample KS test, a z-test on means, and a chi-square over decile
  // bins of the scalar empirical distribution.
  const auto sampler = paper_sampler();
  const auto profile = paper::field_profile();
  const exec::Config serial{1};
  constexpr std::size_t kDraws = 20'000;

  stats::Rng rng_batch(31);
  std::vector<double> batched(kDraws);
  sampler.sample_failure_probabilities(profile, rng_batch, batched, serial);

  stats::Rng rng_scalar(32);
  std::vector<double> scalar(kDraws);
  for (double& v : scalar) {
    v = sampler.sample(rng_scalar).system_failure_probability(profile);
  }

  const auto ks = stats::kolmogorov_smirnov_two_sample(batched, scalar);
  EXPECT_GT(ks.p_value, kAlpha) << "KS statistic " << ks.statistic;

  EXPECT_GT(mean_z_test_p(batched, scalar), kAlpha);

  // Two-sample homogeneity chi-square over decile bins. The edges come
  // from an independent pilot sample — edges derived from one of the
  // compared samples would make its own bin counts exact (no noise) while
  // the test assumes both are noisy, inflating the statistic.
  std::vector<double> edges(kDraws);
  stats::Rng rng_edges(33);
  for (double& v : edges) {
    v = sampler.sample(rng_edges).system_failure_probability(profile);
  }
  std::sort(edges.begin(), edges.end());
  const auto bin_of = [&](double v) {
    std::size_t bin = 0;
    while (bin < 9 && v > edges[(bin + 1) * kDraws / 10 - 1]) ++bin;
    return bin;
  };
  double counts_batched[10] = {0}, counts_scalar[10] = {0};
  for (const double v : batched) ++counts_batched[bin_of(v)];
  for (const double v : scalar) ++counts_scalar[bin_of(v)];
  // Equal sample sizes: X² = Σ (a−b)²/(a+b) is chi-square with k−1 dof
  // under homogeneity.
  double x2 = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double total = counts_batched[i] + counts_scalar[i];
    ASSERT_GT(total, 0.0);
    const double diff = counts_batched[i] - counts_scalar[i];
    x2 += diff * diff / total;
  }
  EXPECT_GT(stats::chi_square_sf(x2, 9.0), kAlpha) << "chi-square " << x2;
}

TEST(UncertaintyEngineStats, PredictAgreesWithPredictReference) {
  // Same workload through both entry points: the summaries must agree to
  // within a few Monte-Carlo standard errors (they use different draws).
  const auto sampler = paper_sampler();
  const auto profile = paper::field_profile();
  const exec::Config serial{1};
  stats::Rng rng_a(7), rng_b(8);
  const auto batched = sampler.predict(profile, rng_a, 40'000, 0.95, serial);
  const auto reference =
      sampler.predict_reference(profile, rng_b, 40'000, 0.95, serial);
  const double se = batched.stddev / std::sqrt(40'000.0);
  EXPECT_NEAR(batched.mean, reference.mean, 5.0 * se);
  EXPECT_NEAR(batched.stddev, reference.stddev, 0.05 * reference.stddev);
  // Sample quantiles are noisier than the mean (SE ≈ sqrt(p(1-p)/n)/f(q),
  // several times the SE of the mean here), so the bound is looser.
  EXPECT_NEAR(batched.lower, reference.lower, 30.0 * se);
  EXPECT_NEAR(batched.upper, reference.upper, 30.0 * se);
}

// ---------------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------------

TEST(UncertaintyEngineDeterminism, PredictBitIdenticalAcrossThreadCounts) {
  const auto sampler = paper_sampler();
  const auto profile = paper::field_profile();
  stats::Rng rng1(99), rng4(99);
  const auto serial = sampler.predict(profile, rng1, 10'000, 0.95,
                                      exec::Config{1});
  const auto wide = sampler.predict(profile, rng4, 10'000, 0.95,
                                    exec::Config{4});
  EXPECT_EQ(serial.mean, wide.mean);
  EXPECT_EQ(serial.stddev, wide.stddev);
  EXPECT_EQ(serial.lower, wide.lower);
  EXPECT_EQ(serial.upper, wide.upper);
}

TEST(UncertaintyEngineDeterminism, SampleBufferIdenticalAcrossThreadCounts) {
  const auto sampler = paper_sampler();
  const auto profile = paper::field_profile();
  stats::Rng rng1(4242), rng4(4242);
  std::vector<double> serial(5'000), wide(5'000);
  sampler.sample_failure_probabilities(profile, rng1, serial, exec::Config{1});
  sampler.sample_failure_probabilities(profile, rng4, wide, exec::Config{4});
  EXPECT_EQ(serial, wide);
}

// ---------------------------------------------------------------------------
// Zero steady-state heap allocations (counting operator new harness shared
// with the sweep engine tests via alloc_count.hpp).
// ---------------------------------------------------------------------------

TEST(UncertaintyEngineAlloc, PredictSteadyStateDoesNotAllocate) {
  const auto sampler = paper_sampler();
  const auto profile = paper::field_profile();
  const exec::Config serial{1};
  stats::Rng rng(1);
  // Warm-up grows the thread-local arena to the high-water mark.
  (void)sampler.predict(profile, rng, 8'192, 0.95, serial);
  const std::uint64_t before = test::allocation_count();
  (void)sampler.predict(profile, rng, 8'192, 0.95, serial);
  EXPECT_EQ(test::allocation_count() - before, 0u);
}

TEST(BootstrapAlloc, PercentileSteadyStateDoesNotAllocate) {
  std::vector<double> sample(256);
  stats::Rng fill(3);
  fill.fill_uniform(sample);
  const stats::Statistic mean_stat = [](std::span<const double> s) {
    double total = 0.0;
    for (const double v : s) total += v;
    return total / static_cast<double>(s.size());
  };
  const exec::Config serial{1};
  stats::Rng rng(17);
  (void)stats::bootstrap_percentile(sample, mean_stat, rng, 500, 0.95, serial);
  const std::uint64_t before = test::allocation_count();
  (void)stats::bootstrap_percentile(sample, mean_stat, rng, 500, 0.95, serial);
  EXPECT_EQ(test::allocation_count() - before, 0u);
}

// ---------------------------------------------------------------------------
// NaN propagation: an undefined statistic must come out as NaN, never as a
// confident-looking clamped bound.
// ---------------------------------------------------------------------------

TEST(UncertaintyEngineNaN, SummariseWithNaNDrawIsAllNaN) {
  std::vector<double> draws(100, 0.25);
  draws[37] = std::numeric_limits<double>::quiet_NaN();
  const auto out = PosteriorModelSampler::summarise(draws, 0.95);
  EXPECT_TRUE(std::isnan(out.mean));
  EXPECT_TRUE(std::isnan(out.stddev));
  EXPECT_TRUE(std::isnan(out.lower));
  EXPECT_TRUE(std::isnan(out.upper));
}

TEST(BootstrapNaN, NaNStatisticPropagatesToIntervalAndStandardError) {
  std::vector<double> sample(64, 1.0);
  sample[0] = -1.0;
  const stats::Statistic fragile = [](std::span<const double> s) {
    // log of the mean: NaN whenever the resample mean dips negative —
    // and with 63 ones and one -1 some resamples will.
    double total = 0.0;
    for (const double v : s) total += v;
    return std::log(total / static_cast<double>(s.size()) - 0.999);
  };
  stats::Rng rng(5);
  const auto result =
      stats::bootstrap_percentile(sample, fragile, rng, 200, 0.95,
                                  exec::Config{1});
  EXPECT_TRUE(std::isnan(result.lower));
  EXPECT_TRUE(std::isnan(result.upper));
  EXPECT_TRUE(std::isnan(result.standard_error));
}

}  // namespace
}  // namespace hmdiv::core
