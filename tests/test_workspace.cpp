// Unit tests for exec/workspace.hpp (scratch arenas).
#include "exec/workspace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/parallel.hpp"

namespace hmdiv::exec {
namespace {

TEST(Workspace, AllocationsAreAlignedAndDisjoint) {
  Workspace ws;
  const std::span<double> a = ws.alloc<double>(3);
  const std::span<std::uint8_t> b = ws.alloc<std::uint8_t>(1);
  const std::span<double> c = ws.alloc<double>(5);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % alignof(double), 0u);
  // Writing through every span must not overlap any other live span.
  for (double& v : a) v = 1.0;
  b[0] = 7;
  for (double& v : c) v = 2.0;
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0.0), 3.0);
  EXPECT_EQ(b[0], 7);
  EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0.0), 10.0);
}

TEST(Workspace, ScopeRewindsAndCapacityIsReused) {
  Workspace ws;
  {
    const Workspace::Scope scope(ws);
    ws.alloc<double>(1000);
  }
  EXPECT_EQ(ws.bytes_in_use(), 0u);
  const std::size_t warm = ws.capacity();
  EXPECT_GE(warm, 1000 * sizeof(double));
  // A same-size replay must reuse the warm capacity, not grow.
  for (int round = 0; round < 4; ++round) {
    const Workspace::Scope scope(ws);
    const std::span<double> v = ws.alloc<double>(1000);
    v[999] = 42.0;
    EXPECT_EQ(ws.capacity(), warm);
  }
  EXPECT_EQ(ws.bytes_in_use(), 0u);
}

TEST(Workspace, ScopesNest) {
  Workspace ws;
  const Workspace::Scope outer(ws);
  const std::span<double> a = ws.alloc<double>(8);
  a[0] = 1.0;
  {
    const Workspace::Scope inner(ws);
    const std::span<double> b = ws.alloc<double>(8);
    b[0] = 2.0;
    EXPECT_GE(ws.bytes_in_use(), 16 * sizeof(double));
  }
  // Inner scope rewound its own allocations but left the outer span live.
  EXPECT_EQ(a[0], 1.0);
  const std::span<double> c = ws.alloc<double>(8);
  EXPECT_NE(c.data(), a.data());
}

TEST(Workspace, GrowsAcrossBlocks) {
  Workspace ws;
  const Workspace::Scope scope(ws);
  // Force several growth steps past the minimum block size.
  const std::span<double> a = ws.alloc<double>(10'000);
  const std::span<double> b = ws.alloc<double>(40'000);
  const std::span<double> c = ws.alloc<double>(100'000);
  a[9'999] = 1.0;
  b[39'999] = 2.0;
  c[99'999] = 3.0;
  EXPECT_EQ(a[9'999] + b[39'999] + c[99'999], 6.0);
  EXPECT_GE(ws.capacity(), 150'000 * sizeof(double));
}

TEST(Workspace, ThreadWorkspaceIsPerThread) {
  Workspace* main_ws = &thread_workspace();
  Workspace* other_ws = nullptr;
  std::thread t([&] { other_ws = &thread_workspace(); });
  t.join();
  EXPECT_NE(main_ws, nullptr);
  EXPECT_NE(other_ws, nullptr);
  EXPECT_NE(main_ws, other_ws);
  // Stable within a thread.
  EXPECT_EQ(main_ws, &thread_workspace());
}

TEST(Workspace, ParallelWorkersUseIndependentArenas) {
  // Hammer the per-thread arenas from the pool: every chunk allocates,
  // fills and checks its own scratch. Runs under the CI TSan job; any
  // cross-thread sharing of arena state would be flagged there.
  std::vector<double> sums(256, 0.0);
  parallel_for_chunks(
      sums.size(), /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        Workspace& ws = thread_workspace();
        const Workspace::Scope scope(ws);
        const std::span<double> scratch = ws.alloc<double>(512);
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < scratch.size(); ++j) {
            scratch[j] = static_cast<double>(i);
          }
          double total = 0.0;
          for (const double v : scratch) total += v;
          sums[i] = total;
        }
      },
      Config{4});
  for (std::size_t i = 0; i < sums.size(); ++i) {
    EXPECT_EQ(sums[i], 512.0 * static_cast<double>(i));
  }
}

}  // namespace
}  // namespace hmdiv::exec
