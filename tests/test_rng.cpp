// Unit + property tests for stats/rng.hpp.
#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "stats/summary.hpp"

namespace hmdiv::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremesAreDeterministic) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(13);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 1.0, 0.03);
}

TEST(Rng, NormalWithParametersShiftsAndScales) {
  Rng rng(13);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(17);
  for (const double shape : {0.5, 1.0, 2.5, 9.0}) {
    OnlineStats s;
    for (int i = 0; i < 100000; ++i) s.add(rng.gamma(shape));
    EXPECT_NEAR(s.mean(), shape, 0.05 * std::max(1.0, shape)) << shape;
  }
  EXPECT_THROW(rng.gamma(0.0), std::invalid_argument);
}

TEST(Rng, BetaMeanMatchesParameters) {
  Rng rng(19);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.beta(2.0, 6.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
  EXPECT_THROW(rng.beta(0.0, 1.0), std::invalid_argument);
}

TEST(Rng, BinomialMeanMatches) {
  Rng rng(23);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(static_cast<double>(rng.binomial(40, 0.25)));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_THROW(rng.binomial(10, 1.5), std::invalid_argument);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(29);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights) {
  Rng rng(31);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.discrete(zero), std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(rng.discrete(negative), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStreams) {
  const Rng parent(123);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  // Correlation of the two streams should be near zero.
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(a.uniform());
    ys.push_back(b.uniform());
  }
  EXPECT_LT(std::fabs(correlation(xs, ys)), 0.03);
}

TEST(Rng, SplitIsDeterministic) {
  const Rng parent(123);
  Rng a = parent.split(9);
  Rng b = parent.split(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, StreamConstructorIsDeterministic) {
  Rng a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsOfOneSeedAreDistinct) {
  // Pairwise windows of many substreams share no outputs — the practical
  // reading of "non-overlapping" for SplitMix64-hashed streams.
  constexpr int kStreams = 64;
  constexpr int kWindow = 512;
  std::set<std::uint64_t> seen;
  for (int stream = 0; stream < kStreams; ++stream) {
    Rng rng(123, static_cast<std::uint64_t>(stream));
    for (int i = 0; i < kWindow; ++i) {
      EXPECT_TRUE(seen.insert(rng.next_u64()).second)
          << "streams overlap at stream " << stream << " step " << i;
    }
  }
}

TEST(Rng, StreamZeroDiffersFromPlainSeed) {
  Rng plain(42);
  Rng stream0(42, 0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += plain.next_u64() == stream0.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, StreamIsNotXorAlias) {
  // Rng(s ^ k, 0) must not collide with Rng(s, k): both inputs are
  // whitened before they are combined.
  Rng a(0xF0F0F0F0ULL ^ 5ULL, 0);
  Rng b(0xF0F0F0F0ULL, 5);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, JumpIsDeterministic) {
  Rng a(99), b(99);
  a.jump();
  b.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, JumpedBlocksDoNotOverlap) {
  // jump() advances by 2^128 steps, so windows taken from consecutive
  // jumped copies of one engine are disjoint blocks of the same sequence.
  constexpr int kBlocks = 8;
  constexpr int kWindow = 4096;
  std::set<std::uint64_t> seen;
  Rng rng(2026);
  for (int block = 0; block < kBlocks; ++block) {
    Rng window = rng;  // copy: reading the window must not move `rng`
    for (int i = 0; i < kWindow; ++i) {
      EXPECT_TRUE(seen.insert(window.next_u64()).second)
          << "jumped blocks overlap at block " << block << " step " << i;
    }
    rng.jump();
  }
}

TEST(Rng, JumpChangesTheStream) {
  Rng jumped(5);
  jumped.jump();
  Rng base(5);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += base.next_u64() == jumped.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, FillUniformMatchesScalarDraws) {
  // The bulk primitive is a loop-hoisted form of uniform(): same stream.
  Rng bulk(77), scalar(77);
  std::vector<double> filled(1000);
  bulk.fill_uniform(filled);
  for (const double v : filled) EXPECT_EQ(v, scalar.uniform());
}

TEST(Rng, FillNormalMatchesScalarDraws) {
  // Must also preserve the polar method's cached spare across the span
  // boundary: fill an odd-length span, then keep drawing from both.
  Rng bulk(78), scalar(78);
  std::vector<double> filled(999);
  bulk.fill_normal(filled);
  for (const double v : filled) EXPECT_EQ(v, scalar.normal());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(bulk.normal(), scalar.normal());
}

TEST(Rng, FillUniformEmptySpanIsNoOp) {
  Rng bulk(79), scalar(79);
  std::vector<double> empty;
  bulk.fill_uniform(empty);
  bulk.fill_normal(empty);
  EXPECT_EQ(bulk.next_u64(), scalar.next_u64());
}

/// Property sweep: moments of uniform() are correct across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMomentsHold) {
  Rng rng(GetParam());
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           0xDEADBEEFULL, ~0ULL));

}  // namespace
}  // namespace hmdiv::stats
