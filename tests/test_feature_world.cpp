// Integration tests for the mechanistic world: ground-truth extraction,
// Eq. (8) predictions vs end-to-end simulation, and complacency dynamics.
#include <gtest/gtest.h>

#include "sim/estimation.hpp"
#include "sim/feature_world.hpp"
#include "sim/ground_truth.hpp"
#include "sim/trial.hpp"

namespace hmdiv::sim {
namespace {

TEST(FeatureWorld, ClassMetadataComesFromGenerator) {
  auto world = reference_feature_world();
  EXPECT_EQ(world.class_count(), 2u);
  EXPECT_EQ(world.class_names()[0], "easy");
  EXPECT_EQ(world.class_names()[1], "difficult");
}

TEST(FeatureWorld, GroundTruthParametersAreOrdered) {
  auto world = reference_feature_world();
  world.set_adaptation_enabled(false);
  stats::Rng rng(21);
  const auto truth = ground_truth_model(world, rng, 100000);
  // The difficult class must be harder for both machine and human.
  EXPECT_GT(truth.parameters(1).p_machine_fails,
            truth.parameters(0).p_machine_fails);
  EXPECT_GT(truth.parameters(1).p_human_fails_given_machine_fails,
            truth.parameters(0).p_human_fails_given_machine_fails);
  // Prompts help: PHf|Ms < PHf|Mf on every class (positive t(x)).
  for (std::size_t x = 0; x < 2; ++x) {
    EXPECT_GT(truth.importance_index(x), 0.0) << x;
  }
  // Orders of magnitude in the paper's range.
  EXPECT_GT(truth.parameters(0).p_machine_fails, 0.001);
  EXPECT_LT(truth.parameters(0).p_machine_fails, 0.3);
  EXPECT_GT(truth.parameters(1).p_machine_fails, 0.1);
  EXPECT_LT(truth.parameters(1).p_machine_fails, 0.8);
}

TEST(FeatureWorld, Equation8PredictsEndToEndSimulation) {
  // The strongest integration check in the repository: the clear-box model
  // evaluated on ground-truth parameters must predict the black-box failure
  // rate of the full mechanistic pipeline.
  auto world = reference_feature_world();
  world.set_adaptation_enabled(false);
  stats::Rng truth_rng(22);
  const auto truth = ground_truth_model(world, truth_rng, 300000);
  const double predicted =
      truth.system_failure_probability(world.generator().profile());

  TrialRunner runner(world, 200000);
  stats::Rng sim_rng(23);
  const auto data = runner.run(sim_rng);
  EXPECT_NEAR(data.observed_failure_rate(), predicted, 0.005);
  EXPECT_NEAR(data.observed_machine_failure_rate(),
              truth.machine_failure_probability(world.generator().profile()),
              0.005);
}

TEST(FeatureWorld, EstimatedParametersMatchGroundTruth) {
  auto world = reference_feature_world();
  world.set_adaptation_enabled(false);
  stats::Rng truth_rng(24);
  const auto truth = ground_truth_model(world, truth_rng, 300000);

  TrialRunner runner(world, 150000);
  stats::Rng sim_rng(25);
  const auto estimate = estimate_sequential_model(runner.run(sim_rng));
  for (std::size_t x = 0; x < 2; ++x) {
    EXPECT_NEAR(estimate.classes[x].p_machine_fails,
                truth.parameters(x).p_machine_fails, 0.01)
        << x;
    EXPECT_NEAR(estimate.classes[x].importance_index(),
                truth.importance_index(x), 0.05)
        << x;
  }
}

TEST(FeatureWorld, TrialProfileReweightingHolds) {
  // Ground truth measured under one profile predicts the failure rate
  // simulated under another — Section 5's extrapolation, mechanistically.
  auto trial_world = reference_feature_world();
  trial_world.set_adaptation_enabled(false);
  stats::Rng truth_rng(26);
  const auto truth = ground_truth_model(trial_world, truth_rng, 300000);

  const core::DemandProfile field({"easy", "difficult"}, {0.9, 0.1});
  auto field_world = reference_feature_world(field);
  field_world.set_adaptation_enabled(false);
  TrialRunner runner(field_world, 200000);
  stats::Rng sim_rng(27);
  const auto data = runner.run(sim_rng);
  EXPECT_NEAR(data.observed_failure_rate(),
              truth.system_failure_probability(field), 0.005);
}

TEST(FeatureWorld, ImprovingTheCadtReducesSystemFailure) {
  auto world = reference_feature_world();
  world.set_adaptation_enabled(false);
  stats::Rng rng(28);
  const auto before = ground_truth_model(world, rng, 100000);
  world.replace_cadt(world.cadt().with_capability_factor(1.5));
  const auto after = ground_truth_model(world, rng, 100000);
  EXPECT_LT(after.machine_failure_probability(world.generator().profile()),
            before.machine_failure_probability(world.generator().profile()));
  EXPECT_LT(after.system_failure_probability(world.generator().profile()),
            before.system_failure_probability(world.generator().profile()));
  // But never below the floor (the reader's PHf|Ms barely moves).
  EXPECT_GT(after.system_failure_probability(world.generator().profile()),
            0.9 * after.failure_floor(world.generator().profile()));
}

TEST(FeatureWorld, AdaptationDriftsReliance) {
  auto config_world = reference_feature_world();
  // Rebuild with an adapting reader.
  ReaderModel::Config adaptive = config_world.reader().config();
  adaptive.adaptation_rate = 0.02;
  FeatureWorld world(config_world.generator(), config_world.cadt(),
                     ReaderModel(adaptive));
  const double before = world.reader().reliance();
  stats::Rng rng(29);
  for (int i = 0; i < 5000; ++i) static_cast<void>(world.simulate_case(rng));
  // The reference CADT prompts most cancers: reliance should have grown.
  EXPECT_GT(world.reader().reliance(), before);
}

TEST(FeatureWorld, DetailedOutcomeIsConsistent) {
  auto world = reference_feature_world();
  stats::Rng rng(30);
  for (int i = 0; i < 2000; ++i) {
    const auto detail = world.simulate_detailed(rng);
    if (detail.recalled) {
      EXPECT_TRUE(detail.reader_detected);
    }
    EXPECT_LT(detail.demand.class_index, 2u);
  }
}

}  // namespace
}  // namespace hmdiv::sim
