// Edge-case and failure-injection tests across the pipeline: degenerate
// probabilities, extreme models, and partially-observable trials must be
// handled gracefully (exact answers or clean exceptions — never NaNs).
#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregation.hpp"
#include "core/design_advisor.hpp"
#include "core/sequential_model.hpp"
#include "core/uncertainty.hpp"
#include "sim/estimation.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"
#include "stats/intervals.hpp"

namespace hmdiv {
namespace {

using core::ClassConditional;
using core::DemandProfile;
using core::SequentialModel;

SequentialModel extreme_model() {
  ClassConditional perfect_machine;   // PMf = 0: PHf|Mf unobservable
  perfect_machine.p_machine_fails = 0.0;
  perfect_machine.p_human_fails_given_machine_fails = 0.5;  // irrelevant
  perfect_machine.p_human_fails_given_machine_succeeds = 0.1;
  ClassConditional hopeless_machine;  // PMf = 1: PHf|Ms unobservable
  hopeless_machine.p_machine_fails = 1.0;
  hopeless_machine.p_human_fails_given_machine_fails = 0.8;
  hopeless_machine.p_human_fails_given_machine_succeeds = 0.5;
  ClassConditional perfect_human;
  perfect_human.p_machine_fails = 0.3;
  return SequentialModel({"perfect-machine", "hopeless-machine",
                          "perfect-human"},
                         {perfect_machine, hopeless_machine, perfect_human});
}

TEST(EdgeCases, DegenerateProbabilitiesEvaluateExactly) {
  const auto m = extreme_model();
  const DemandProfile p(m.class_names(), {0.5, 0.3, 0.2});
  // Class contributions: 0.5*0.1 + 0.3*0.8 + 0.2*0 = 0.29.
  EXPECT_NEAR(m.system_failure_probability(p), 0.29, 1e-12);
  const auto d = m.decompose(p);
  EXPECT_NEAR(d.total(), 0.29, 1e-12);
  EXPECT_TRUE(std::isfinite(d.covariance));
}

TEST(EdgeCases, DesignAdvisorHandlesZeroAndOneMachineFailure) {
  const auto m = extreme_model();
  const DemandProfile p(m.class_names(), {0.5, 0.3, 0.2});
  core::DesignAdvisor advisor(m, p);
  const auto diagnosis = advisor.diagnose();
  EXPECT_TRUE(std::isfinite(diagnosis.correlation));
  for (const double leverage : diagnosis.class_leverage) {
    EXPECT_TRUE(std::isfinite(leverage));
  }
  // Improving the perfect machine is a no-op; the hopeless one has
  // leverage 0.3·(0.8−0.5)·1.0.
  EXPECT_NEAR(diagnosis.class_leverage[1], 0.3 * 0.3 * 1.0, 1e-12);
  EXPECT_EQ(advisor.best_target_class(), 1u);
}

TEST(EdgeCases, SingleClassModelWorksEverywhere) {
  ClassConditional only;
  only.p_machine_fails = 0.2;
  only.p_human_fails_given_machine_fails = 0.6;
  only.p_human_fails_given_machine_succeeds = 0.3;
  const SequentialModel m({"only"}, {only});
  const DemandProfile p({"only"}, {1.0});
  EXPECT_NEAR(m.system_failure_probability(p), 0.3 * 0.8 + 0.6 * 0.2, 1e-12);
  // Covariance over a single class is zero: no between-class variation.
  EXPECT_NEAR(m.decompose(p).covariance, 0.0, 1e-15);
  // Aggregating one class into one class is the identity.
  core::ClassPartition identity;
  identity.coarse_names = {"only"};
  identity.group_of = {0};
  const auto view = core::coarsen(m, p, identity);
  EXPECT_NEAR(view.model.system_failure_probability(view.profile),
              m.system_failure_probability(p), 1e-15);
}

TEST(EdgeCases, TrialOnDegenerateWorldNeverEmitsImpossibleEvents) {
  const auto m = extreme_model();
  const DemandProfile p(m.class_names(), {0.4, 0.3, 0.3});
  sim::TabularWorld world(m, p);
  sim::TrialRunner runner(world, 30000);
  stats::Rng rng(777);
  const auto data = runner.run(rng);
  for (const auto& r : data.records) {
    if (r.class_index == 0) {
      EXPECT_FALSE(r.machine_failed);
    }
    if (r.class_index == 1) {
      EXPECT_TRUE(r.machine_failed);
    }
    if (r.class_index == 2) {
      EXPECT_FALSE(r.human_failed);
    }
  }
}

TEST(EdgeCases, EstimationSurvivesUnobservableConditionals) {
  // On the perfect-machine class no machine failures ever occur, so
  // PHf|Mf is unobservable: the estimator must fall back to the prior and
  // keep the default [0,1] interval rather than crash or emit NaN.
  const auto m = extreme_model();
  const DemandProfile p(m.class_names(), {0.4, 0.3, 0.3});
  sim::TabularWorld world(m, p);
  sim::TrialRunner runner(world, 20000);
  stats::Rng rng(778);
  const auto estimate = sim::estimate_sequential_model(runner.run(rng));
  const auto& perfect = estimate.classes[0];
  EXPECT_EQ(perfect.counts.machine_failures, 0u);
  EXPECT_TRUE(std::isfinite(perfect.p_human_fails_given_machine_fails));
  EXPECT_EQ(perfect.human_given_failure_interval.lower, 0.0);
  EXPECT_EQ(perfect.human_given_failure_interval.upper, 1.0);
  // The fitted model is still valid and predicts the observable part.
  const auto fitted = estimate.fitted_model();
  EXPECT_NEAR(fitted.system_failure_probability(p),
              m.system_failure_probability(p), 0.01);
}

TEST(EdgeCases, PosteriorSamplerHandlesBoundaryCounts) {
  // All failures / no failures / tiny classes.
  core::ClassCounts all_fail;
  all_fail.cases = 5;
  all_fail.machine_failures = 5;
  all_fail.human_failures_given_machine_failed = 5;
  core::ClassCounts none_fail;
  none_fail.cases = 5;
  const core::PosteriorModelSampler sampler({"bad", "good"},
                                            {all_fail, none_fail});
  stats::Rng rng(779);
  const DemandProfile p({"bad", "good"}, {0.5, 0.5});
  const auto prediction = sampler.predict(p, rng, 500);
  EXPECT_GE(prediction.lower, 0.0);
  EXPECT_LE(prediction.upper, 1.0);
  EXPECT_GT(prediction.mean, 0.2);  // the bad class nearly always fails
  EXPECT_TRUE(std::isfinite(prediction.stddev));
}

TEST(EdgeCases, IntervalsAtSingleObservation) {
  for (const auto k : {0ULL, 1ULL}) {
    const auto wilson = stats::wilson_interval(k, 1);
    EXPECT_GE(wilson.lower, 0.0);
    EXPECT_LE(wilson.upper, 1.0);
    EXPECT_LT(wilson.lower, wilson.upper);
    const auto exact = stats::clopper_pearson_interval(k, 1);
    EXPECT_GE(exact.width(), wilson.width() - 1e-9);  // CP is conservative
  }
}

TEST(EdgeCases, WithMachineIgnoredOnDegenerateModel) {
  const auto ignored = extreme_model().with_machine_ignored();
  const DemandProfile p(ignored.class_names(), {0.4, 0.3, 0.3});
  for (std::size_t x = 0; x < ignored.class_count(); ++x) {
    EXPECT_NEAR(ignored.importance_index(x), 0.0, 1e-12);
  }
  EXPECT_NEAR(ignored.system_failure_probability(p),
              extreme_model().system_failure_probability(p), 1e-12);
}

}  // namespace
}  // namespace hmdiv
