// Unit tests for core/multi_reader.hpp (Conclusions: programme variants).
#include "core/multi_reader.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/summary.hpp"

namespace hmdiv::core {
namespace {

DemandProfile profile() {
  return DemandProfile({"easy", "difficult"}, {0.8, 0.2});
}

TEST(DoubleReading, ValidatesConstruction) {
  EXPECT_THROW(DoubleReadingModel({}, {}, {}), std::invalid_argument);
  EXPECT_THROW(DoubleReadingModel({"a"}, {0.1, 0.2}, {0.1}),
               std::invalid_argument);
  EXPECT_THROW(DoubleReadingModel({"a"}, {1.5}, {0.1}), std::invalid_argument);
}

TEST(DoubleReading, BothMustFail) {
  const DoubleReadingModel m({"easy", "difficult"}, {0.1, 0.6}, {0.2, 0.7});
  EXPECT_NEAR(m.system_failure_given_class(0), 0.02, 1e-12);
  EXPECT_NEAR(m.system_failure_given_class(1), 0.42, 1e-12);
  EXPECT_NEAR(m.system_failure_probability(profile()),
              0.8 * 0.02 + 0.2 * 0.42, 1e-12);
}

TEST(DoubleReading, BeatsEitherSingleReader) {
  const DoubleReadingModel m({"easy", "difficult"}, {0.1, 0.6}, {0.2, 0.7});
  const auto p = profile();
  EXPECT_LT(m.system_failure_probability(p), m.reader_a_failure(p));
  EXPECT_LT(m.system_failure_probability(p), m.reader_b_failure(p));
}

TEST(DoubleReading, SharedDifficultyInducesPositiveCovariance) {
  const DoubleReadingModel m({"easy", "difficult"}, {0.1, 0.6}, {0.2, 0.7});
  const auto p = profile();
  const double cov = m.failure_covariance(p);
  EXPECT_GT(cov, 0.0);
  // Joint failure = product of marginals + covariance (Eq. 3 again).
  EXPECT_NEAR(m.system_failure_probability(p),
              m.reader_a_failure(p) * m.reader_b_failure(p) + cov, 1e-12);
}

TEST(DoubleReading, ArbitrationLiesBetweenAndAndOr) {
  const DoubleReadingModel m({"easy", "difficult"}, {0.1, 0.6}, {0.2, 0.7});
  const auto p = profile();
  const std::vector<double> arbiter{0.15, 0.65};
  const double with_arb = m.system_failure_with_arbitration(p, arbiter);
  // "Recall if either" (arbiter never wrongly blocks) is the best case.
  EXPECT_GT(with_arb, m.system_failure_probability(p));
  // A perfect arbiter recovers the recall-if-either failure rate.
  const std::vector<double> perfect{0.0, 0.0};
  EXPECT_NEAR(m.system_failure_with_arbitration(p, perfect),
              m.system_failure_probability(p), 1e-12);
  // An always-wrong arbiter: FN whenever at least one reader fails.
  const std::vector<double> hopeless{1.0, 1.0};
  const double anyone_fails = 0.8 * (0.1 + 0.2 - 0.1 * 0.2) +
                              0.2 * (0.6 + 0.7 - 0.6 * 0.7);
  EXPECT_NEAR(m.system_failure_with_arbitration(p, hopeless), anyone_fails,
              1e-12);
  const std::vector<double> short_arb{0.1};
  EXPECT_THROW(static_cast<void>(
                   m.system_failure_with_arbitration(p, short_arb)),
               std::invalid_argument);
}

TwoReadersWithCadtModel cadt_pair() {
  std::vector<ReaderConditional> a(2), b(2);
  a[0] = {0.18, 0.14};
  a[1] = {0.9, 0.4};
  b[0] = {0.25, 0.2};
  b[1] = {0.85, 0.5};
  return TwoReadersWithCadtModel({"easy", "difficult"}, {0.07, 0.41}, a, b);
}

TEST(TwoReadersWithCadt, ValidatesConstruction) {
  std::vector<ReaderConditional> one(1), two(2);
  EXPECT_THROW(
      TwoReadersWithCadtModel({"a", "b"}, {0.1, 0.2}, one, two),
      std::invalid_argument);
  std::vector<ReaderConditional> bad(2);
  bad[0].p_fail_given_machine_fails = 2.0;
  EXPECT_THROW(TwoReadersWithCadtModel({"a", "b"}, {0.1, 0.2}, bad, two),
               std::invalid_argument);
  EXPECT_THROW(TwoReadersWithCadtModel({"a", "b"}, {0.1, 1.2}, two, two),
               std::invalid_argument);
}

TEST(TwoReadersWithCadt, PerClassClosedForm) {
  const auto m = cadt_pair();
  // PMf·pA|Mf·pB|Mf + PMs·pA|Ms·pB|Ms.
  EXPECT_NEAR(m.system_failure_given_class(0),
              0.07 * 0.18 * 0.25 + 0.93 * 0.14 * 0.2, 1e-12);
  EXPECT_NEAR(m.system_failure_given_class(1),
              0.41 * 0.9 * 0.85 + 0.59 * 0.4 * 0.5, 1e-12);
}

TEST(TwoReadersWithCadt, BeatsEachSingleReaderWithCadt) {
  const auto m = cadt_pair();
  const auto p = profile();
  const double pair_failure = m.system_failure_probability(p);
  EXPECT_LT(pair_failure,
            m.reader_a_alone().system_failure_probability(p));
  EXPECT_LT(pair_failure,
            m.reader_b_alone().system_failure_probability(p));
}

TEST(TwoReadersWithCadt, SharedMachineMakesIndependenceOptimistic) {
  // Both readers fail together when the shared machine fails (t > 0 for
  // both), so multiplying single-reader failure rates underestimates.
  const auto m = cadt_pair();
  const auto p = profile();
  EXPECT_LT(m.system_failure_assuming_reader_independence(p),
            m.system_failure_probability(p));
}

TEST(TwoReadersWithCadt, SingleReaderSubmodelsMatchInputs) {
  const auto m = cadt_pair();
  const auto a = m.reader_a_alone();
  EXPECT_NEAR(a.parameters(1).p_human_fails_given_machine_fails, 0.9, 1e-12);
  EXPECT_NEAR(a.parameters(1).p_machine_fails, 0.41, 1e-12);
  const auto b = m.reader_b_alone();
  EXPECT_NEAR(b.parameters(0).p_human_fails_given_machine_succeeds, 0.2,
              1e-12);
}

}  // namespace
}  // namespace hmdiv::core
