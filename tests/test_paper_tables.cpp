// Oracle tests: the repository must reproduce every number the paper's
// Section 5 reports, and the structural claims of Section 6 (Fig. 4).
//
// The paper's tables are closed-form evaluations of Eq. (8) on the given
// parameters, so these match to the paper's printed precision. (One nit:
// the paper prints 0.421 for the improved difficult class; the exact value
// is 0.4205 — the paper rounds half-up, std::printf rounds half-even. We
// assert against the exact value with a half-ulp-of-print tolerance.)
#include <gtest/gtest.h>

#include "core/demand_profile.hpp"
#include "core/paper_example.hpp"
#include "core/sequential_model.hpp"

namespace hmdiv::core {
namespace {

constexpr double kPrintTolerance = 5e-4;  // half of the 3-decimal last digit

TEST(PaperTables, Table1ParametersRoundTrip) {
  const auto m = paper::example_model();
  EXPECT_EQ(m.class_names()[paper::kEasy], "easy");
  EXPECT_EQ(m.class_names()[paper::kDifficult], "difficult");
  EXPECT_DOUBLE_EQ(m.parameters(paper::kEasy).p_machine_fails, 0.07);
  EXPECT_DOUBLE_EQ(m.parameters(paper::kEasy).p_human_fails_given_machine_fails,
                   0.18);
  EXPECT_DOUBLE_EQ(
      m.parameters(paper::kEasy).p_human_fails_given_machine_succeeds, 0.14);
  EXPECT_DOUBLE_EQ(m.parameters(paper::kDifficult).p_machine_fails, 0.41);
  EXPECT_DOUBLE_EQ(
      m.parameters(paper::kDifficult).p_human_fails_given_machine_fails, 0.9);
  EXPECT_DOUBLE_EQ(
      m.parameters(paper::kDifficult).p_human_fails_given_machine_succeeds,
      0.4);
  EXPECT_NEAR(m.parameters(paper::kEasy).p_machine_succeeds(), 0.93, 1e-12);
  EXPECT_NEAR(m.parameters(paper::kDifficult).p_machine_succeeds(), 0.59,
              1e-12);
  EXPECT_DOUBLE_EQ(paper::trial_profile()[paper::kEasy], 0.8);
  EXPECT_DOUBLE_EQ(paper::field_profile()[paper::kEasy], 0.9);
}

TEST(PaperTables, Table2SystemFailureProbabilities) {
  const auto m = paper::example_model();
  const auto reported = paper::reported_values();
  EXPECT_NEAR(m.system_failure_given_class(paper::kEasy),
              reported.failure_easy, kPrintTolerance);
  EXPECT_NEAR(m.system_failure_given_class(paper::kDifficult),
              reported.failure_difficult, kPrintTolerance);
  EXPECT_NEAR(m.system_failure_probability(paper::trial_profile()),
              reported.failure_trial, kPrintTolerance);
  EXPECT_NEAR(m.system_failure_probability(paper::field_profile()),
              reported.failure_field, kPrintTolerance);
}

TEST(PaperTables, Table2ExactValues) {
  // The paper's numbers are rounded; the exact Eq. (8) values are:
  const auto m = paper::example_model();
  EXPECT_NEAR(m.system_failure_given_class(paper::kEasy), 0.1428, 1e-10);
  EXPECT_NEAR(m.system_failure_given_class(paper::kDifficult), 0.605, 1e-10);
  EXPECT_NEAR(m.system_failure_probability(paper::trial_profile()), 0.23524,
              1e-10);
  EXPECT_NEAR(m.system_failure_probability(paper::field_profile()), 0.18902,
              1e-10);
}

TEST(PaperTables, Table3ImprovementScenarios) {
  const auto m = paper::example_model();
  const auto reported = paper::reported_values();
  const auto trial = paper::trial_profile();
  const auto field = paper::field_profile();

  const auto improved_easy =
      m.with_machine_improvement(paper::kEasy, paper::kImprovementFactor);
  EXPECT_NEAR(improved_easy.system_failure_given_class(paper::kEasy),
              reported.improved_easy_class_failure, kPrintTolerance);
  // The difficult class is untouched by the easy-class improvement.
  EXPECT_NEAR(improved_easy.system_failure_given_class(paper::kDifficult),
              reported.failure_difficult, kPrintTolerance);
  EXPECT_NEAR(improved_easy.system_failure_probability(trial),
              reported.improved_easy_trial, kPrintTolerance);
  EXPECT_NEAR(improved_easy.system_failure_probability(field),
              reported.improved_easy_field, kPrintTolerance);

  const auto improved_difficult =
      m.with_machine_improvement(paper::kDifficult, paper::kImprovementFactor);
  EXPECT_NEAR(improved_difficult.system_failure_given_class(paper::kEasy),
              reported.failure_easy, kPrintTolerance);
  // Exact value 0.4205: the paper prints 0.421 (half-up); allow the full
  // half-digit plus floating slack.
  EXPECT_NEAR(improved_difficult.system_failure_given_class(paper::kDifficult),
              0.4205, 1e-10);
  EXPECT_NEAR(
      improved_difficult.system_failure_given_class(paper::kDifficult),
      reported.improved_difficult_class_failure, 5.1e-4);
  EXPECT_NEAR(improved_difficult.system_failure_probability(trial),
              reported.improved_difficult_trial, kPrintTolerance);
  EXPECT_NEAR(improved_difficult.system_failure_probability(field),
              reported.improved_difficult_field, kPrintTolerance);
}

TEST(PaperTables, ImprovingDifficultCasesBeatsEasyCases) {
  // The paper's headline non-intuitive conclusion: the rarer difficult
  // cases are the better improvement target under BOTH profiles.
  const auto m = paper::example_model();
  const auto improved_easy =
      m.with_machine_improvement(paper::kEasy, paper::kImprovementFactor);
  const auto improved_difficult =
      m.with_machine_improvement(paper::kDifficult, paper::kImprovementFactor);
  for (const auto& profile :
       {paper::trial_profile(), paper::field_profile()}) {
    EXPECT_LT(improved_difficult.system_failure_probability(profile),
              improved_easy.system_failure_probability(profile));
  }
}

TEST(PaperTables, EasyImprovementIsMarginalBecauseTIsSmall) {
  // Section 5's explanation: t(easy) = 0.04 only. The 10x improvement on
  // 90% of field cases buys just 0.002 (0.189 -> 0.187).
  const auto m = paper::example_model();
  EXPECT_NEAR(m.importance_index(paper::kEasy), 0.04, 1e-12);
  EXPECT_NEAR(m.importance_index(paper::kDifficult), 0.5, 1e-12);
  const auto field = paper::field_profile();
  const double baseline = m.system_failure_probability(field);
  const double improved =
      m.with_machine_improvement(paper::kEasy, paper::kImprovementFactor)
          .system_failure_probability(field);
  EXPECT_NEAR(baseline - improved, 0.9 * 0.04 * (0.07 - 0.007), 1e-12);
  EXPECT_LT(baseline - improved, 0.0025);
}

TEST(PaperTables, Figure4LineIsExact) {
  // Fig. 4: for fixed human response, PHf(x) is linear in PMf(x) with slope
  // t(x) and intercept PHf|Ms(x).
  const auto m = paper::example_model();
  for (std::size_t x = 0; x < m.class_count(); ++x) {
    const auto line = m.importance_line(x);
    for (double pmf = 0.0; pmf <= 1.0; pmf += 0.1) {
      ClassConditional c = m.parameters(x);
      c.p_machine_fails = pmf;
      EXPECT_NEAR(c.system_failure(), line.at(pmf), 1e-12);
    }
    // Intercept = floor; at PMf = 1 the line hits PHf|Mf.
    EXPECT_NEAR(line.at(0.0),
                m.parameters(x).p_human_fails_given_machine_succeeds, 1e-12);
    EXPECT_NEAR(line.at(1.0),
                m.parameters(x).p_human_fails_given_machine_fails, 1e-12);
  }
}

TEST(PaperTables, Equation10CovarianceIsPositiveHere) {
  // In the example, machine-difficult cases are also high-t cases: the
  // covariance term is positive, so the mean-field estimate is optimistic.
  const auto m = paper::example_model();
  for (const auto& profile :
       {paper::trial_profile(), paper::field_profile()}) {
    const auto d = m.decompose(profile);
    EXPECT_GT(d.covariance, 0.0);
    EXPECT_LT(d.floor + d.mean_field, m.system_failure_probability(profile));
  }
}

}  // namespace
}  // namespace hmdiv::core
