// Unit tests for sim/cadt.hpp.
#include "sim/cadt.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hmdiv::sim {
namespace {

CadtModel reference_cadt() {
  CadtModel::Config config;
  config.capability = 1.5;
  config.sensitivity_slope = 1.4;
  return CadtModel(config);
}

TEST(Cadt, ValidatesConfig) {
  CadtModel::Config bad;
  bad.sensitivity_slope = 0.0;
  EXPECT_THROW(CadtModel{bad}, std::invalid_argument);
}

TEST(Cadt, PromptProbabilityDecreasesWithDifficulty) {
  const auto cadt = reference_cadt();
  double previous = 1.1;
  for (double difficulty = -3.0; difficulty <= 4.0; difficulty += 0.5) {
    const double p = cadt.prompt_probability(difficulty);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    EXPECT_LT(p, previous);
    previous = p;
  }
}

TEST(Cadt, FailureIsComplementOfPrompt) {
  const auto cadt = reference_cadt();
  for (double d = -2.0; d <= 2.0; d += 0.7) {
    EXPECT_NEAR(cadt.failure_probability(d) + cadt.prompt_probability(d), 1.0,
                1e-12);
  }
}

TEST(Cadt, MidpointIsAtCapability) {
  const auto cadt = reference_cadt();
  EXPECT_NEAR(cadt.prompt_probability(1.5), 0.5, 1e-12);
}

TEST(Cadt, ThresholdShiftMovesOperatingPoint) {
  const auto cadt = reference_cadt();
  const auto eager = cadt.with_threshold_shift(-1.0);
  const auto strict = cadt.with_threshold_shift(1.0);
  for (double d = -1.0; d <= 2.5; d += 0.5) {
    EXPECT_GT(eager.prompt_probability(d), cadt.prompt_probability(d));
    EXPECT_LT(strict.prompt_probability(d), cadt.prompt_probability(d));
  }
}

TEST(Cadt, CapabilityFactorImprovesDetection) {
  const auto cadt = reference_cadt();
  const auto better = cadt.with_capability_factor(1.5);
  for (double d = 0.0; d <= 3.0; d += 0.5) {
    EXPECT_LT(better.failure_probability(d), cadt.failure_probability(d));
  }
  EXPECT_THROW(static_cast<void>(cadt.with_capability_factor(0.0)),
               std::invalid_argument);
}

TEST(Cadt, SimulatedFrequencyMatchesAnalytic) {
  const auto cadt = reference_cadt();
  stats::Rng rng(71);
  Case c;
  c.machine_difficulty = 1.0;
  int prompts = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) prompts += cadt.prompts(c, rng) ? 1 : 0;
  EXPECT_NEAR(prompts / static_cast<double>(n),
              cadt.prompt_probability(1.0), 0.01);
}

}  // namespace
}  // namespace hmdiv::sim
