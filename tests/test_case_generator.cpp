// Unit tests for sim/case_generator.hpp.
#include "sim/case_generator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/hypothesis.hpp"
#include "stats/summary.hpp"

namespace hmdiv::sim {
namespace {

std::vector<CaseClassSpec> two_specs() {
  std::vector<CaseClassSpec> specs(2);
  specs[0].name = "easy";
  specs[0].human_difficulty_mean = -1.0;
  specs[0].human_difficulty_sigma = 0.5;
  specs[0].machine_difficulty_mean = -0.5;
  specs[0].machine_difficulty_sigma = 0.7;
  specs[0].difficulty_correlation = 0.6;
  specs[1].name = "difficult";
  specs[1].human_difficulty_mean = 1.5;
  specs[1].human_difficulty_sigma = 1.0;
  specs[1].machine_difficulty_mean = 1.0;
  specs[1].machine_difficulty_sigma = 1.0;
  specs[1].difficulty_correlation = -0.4;
  return specs;
}

core::DemandProfile two_profile() {
  return core::DemandProfile({"easy", "difficult"}, {0.8, 0.2});
}

TEST(CaseGenerator, ValidatesConstruction) {
  auto specs = two_specs();
  EXPECT_THROW(CaseGenerator({specs[0]}, two_profile()),
               std::invalid_argument);
  auto wrong_name = specs;
  wrong_name[1].name = "hard";
  EXPECT_THROW(CaseGenerator(wrong_name, two_profile()),
               std::invalid_argument);
  auto bad_corr = specs;
  bad_corr[0].difficulty_correlation = 1.5;
  EXPECT_THROW(CaseGenerator(bad_corr, two_profile()), std::invalid_argument);
  auto bad_sigma = specs;
  bad_sigma[0].human_difficulty_sigma = -0.1;
  EXPECT_THROW(CaseGenerator(bad_sigma, two_profile()), std::invalid_argument);
}

TEST(CaseGenerator, ClassFrequenciesMatchProfile) {
  CaseGenerator gen(two_specs(), two_profile());
  stats::Rng rng(1000);
  std::vector<std::uint64_t> counts(2, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[gen.generate(rng).class_index];
  const std::vector<double> expected{0.8, 0.2};
  const auto test = stats::chi_square_goodness_of_fit(counts, expected);
  EXPECT_GT(test.p_value, 1e-4);
}

TEST(CaseGenerator, DifficultyMomentsMatchSpecs) {
  CaseGenerator gen(two_specs(), two_profile());
  stats::Rng rng(1001);
  stats::OnlineStats human, machine;
  for (int i = 0; i < 100000; ++i) {
    const auto [h, m] = gen.sample_difficulties(1, rng);
    human.add(h);
    machine.add(m);
  }
  EXPECT_NEAR(human.mean(), 1.5, 0.02);
  EXPECT_NEAR(human.stddev(), 1.0, 0.02);
  EXPECT_NEAR(machine.mean(), 1.0, 0.02);
  EXPECT_NEAR(machine.stddev(), 1.0, 0.02);
}

TEST(CaseGenerator, CorrelationIsInduced) {
  CaseGenerator gen(two_specs(), two_profile());
  stats::Rng rng(1002);
  std::vector<double> hs, ms;
  for (int i = 0; i < 50000; ++i) {
    const auto [h, m] = gen.sample_difficulties(0, rng);
    hs.push_back(h);
    ms.push_back(m);
  }
  EXPECT_NEAR(stats::correlation(hs, ms), 0.6, 0.02);
  hs.clear();
  ms.clear();
  for (int i = 0; i < 50000; ++i) {
    const auto [h, m] = gen.sample_difficulties(1, rng);
    hs.push_back(h);
    ms.push_back(m);
  }
  EXPECT_NEAR(stats::correlation(hs, ms), -0.4, 0.02);
}

TEST(CaseGenerator, IdsAreSequentialAndCancerFlagSet) {
  CaseGenerator gen(two_specs(), two_profile());
  stats::Rng rng(1003);
  const Case first = gen.generate(rng);
  const Case second = gen.generate(rng);
  EXPECT_EQ(second.id, first.id + 1);
  EXPECT_TRUE(first.has_cancer);
}

TEST(CaseGenerator, WithProfileSwapsTheMix) {
  CaseGenerator gen(two_specs(), two_profile());
  auto field = gen.with_profile(
      core::DemandProfile({"easy", "difficult"}, {0.9, 0.1}));
  stats::Rng rng(1004);
  int difficult = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    difficult += field.generate(rng).class_index == 1 ? 1 : 0;
  }
  EXPECT_NEAR(difficult / static_cast<double>(n), 0.1, 0.01);
  EXPECT_THROW(gen.with_profile(core::DemandProfile({"a", "b"}, {0.5, 0.5})),
               std::invalid_argument);
}

TEST(CaseGenerator, SpecAccessorChecksRange) {
  CaseGenerator gen(two_specs(), two_profile());
  EXPECT_EQ(gen.spec(0).name, "easy");
  EXPECT_THROW(static_cast<void>(gen.spec(2)), std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::sim
