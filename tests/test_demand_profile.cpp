// Unit tests for core/demand_profile.hpp.
#include "core/demand_profile.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace hmdiv::core {
namespace {

TEST(DemandProfile, ValidatesConstruction) {
  EXPECT_THROW(DemandProfile({}, {}), std::invalid_argument);
  EXPECT_THROW(DemandProfile({"a", "a"}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(DemandProfile({"a", ""}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(DemandProfile({"a", "b"}, {0.5}), std::invalid_argument);
  EXPECT_THROW(DemandProfile({"a", "b"}, {0.5, 0.6}), std::invalid_argument);
  EXPECT_NO_THROW(DemandProfile({"a", "b"}, {0.5, 0.5}));
}

TEST(DemandProfile, FromWeightsNormalises) {
  const auto p = DemandProfile::from_weights({"a", "b", "c"}, {1.0, 1.0, 2.0});
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

TEST(DemandProfile, LookupByNameAndIndex) {
  const DemandProfile p({"easy", "difficult"}, {0.8, 0.2});
  EXPECT_EQ(p.class_count(), 2u);
  EXPECT_EQ(p.index_of("difficult"), 1u);
  EXPECT_EQ(p.class_name(0), "easy");
  EXPECT_THROW(p.index_of("unknown"), std::invalid_argument);
  EXPECT_THROW(p.class_name(2), std::invalid_argument);
  EXPECT_THROW(p.probability(2), std::invalid_argument);
}

TEST(DemandProfile, ExpectationWeightsValues) {
  const DemandProfile p({"easy", "difficult"}, {0.8, 0.2});
  const std::vector<double> values{0.143, 0.605};
  EXPECT_NEAR(p.expectation(values), 0.2354, 1e-10);
}

TEST(DemandProfile, SameClassesRequiresSameOrder) {
  const DemandProfile a({"x", "y"}, {0.5, 0.5});
  const DemandProfile b({"x", "y"}, {0.1, 0.9});
  const DemandProfile c({"y", "x"}, {0.5, 0.5});
  EXPECT_TRUE(a.same_classes(b));
  EXPECT_FALSE(a.same_classes(c));
}

TEST(DemandProfile, BlendInterpolatesPointwise) {
  const DemandProfile trial({"easy", "difficult"}, {0.8, 0.2});
  const DemandProfile field({"easy", "difficult"}, {0.9, 0.1});
  const DemandProfile half = trial.blend(field, 0.5);
  EXPECT_NEAR(half[0], 0.85, 1e-12);
  EXPECT_NEAR(half[1], 0.15, 1e-12);
  EXPECT_NEAR(trial.blend(field, 0.0)[0], 0.8, 1e-12);
  EXPECT_NEAR(trial.blend(field, 1.0)[0], 0.9, 1e-12);
  EXPECT_THROW(trial.blend(field, 1.5), std::invalid_argument);
  const DemandProfile other({"a", "b"}, {0.5, 0.5});
  EXPECT_THROW(trial.blend(other, 0.5), std::invalid_argument);
}

TEST(DemandProfile, SamplingFollowsProbabilities) {
  const DemandProfile p({"easy", "difficult"}, {0.8, 0.2});
  stats::Rng rng(4242);
  int difficult = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) difficult += p.sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(difficult / static_cast<double>(n), 0.2, 0.01);
}

}  // namespace
}  // namespace hmdiv::core
