// Unit + property tests for core/sequential_model.hpp — the paper's main
// model. The central properties: Eq. (8) == Eq. (9) == Eq. (10) identically,
// and the §6.1 floor.
#include "core/sequential_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/paper_example.hpp"
#include "stats/rng.hpp"

namespace hmdiv::core {
namespace {

SequentialModel tiny_model() {
  ClassConditional a;
  a.p_machine_fails = 0.1;
  a.p_human_fails_given_machine_fails = 0.5;
  a.p_human_fails_given_machine_succeeds = 0.2;
  ClassConditional b;
  b.p_machine_fails = 0.4;
  b.p_human_fails_given_machine_fails = 0.9;
  b.p_human_fails_given_machine_succeeds = 0.3;
  return SequentialModel({"a", "b"}, {a, b});
}

TEST(SequentialModel, ValidatesConstruction) {
  ClassConditional ok;
  ClassConditional bad;
  bad.p_machine_fails = 1.2;
  EXPECT_THROW(SequentialModel({}, {}), std::invalid_argument);
  EXPECT_THROW(SequentialModel({"a"}, {ok, ok}), std::invalid_argument);
  EXPECT_THROW(SequentialModel({"a", "a"}, {ok, ok}), std::invalid_argument);
  EXPECT_THROW(SequentialModel({"a"}, {bad}), std::invalid_argument);
}

TEST(SequentialModel, ClassAccessorsAndErrors) {
  const auto m = tiny_model();
  EXPECT_EQ(m.class_count(), 2u);
  EXPECT_EQ(m.index_of("b"), 1u);
  EXPECT_THROW(m.index_of("zzz"), std::invalid_argument);
  EXPECT_THROW(m.parameters(2), std::invalid_argument);
  EXPECT_NEAR(m.parameters(0).p_machine_succeeds(), 0.9, 1e-12);
}

TEST(SequentialModel, ImportanceIndexIsDifference) {
  const auto m = tiny_model();
  EXPECT_NEAR(m.importance_index(0), 0.3, 1e-12);
  EXPECT_NEAR(m.importance_index(1), 0.6, 1e-12);
  const auto line = m.importance_line(1);
  EXPECT_NEAR(line.intercept, 0.3, 1e-12);
  EXPECT_NEAR(line.slope, 0.6, 1e-12);
  EXPECT_NEAR(line.at(0.4), m.system_failure_given_class(1), 1e-12);
}

TEST(SequentialModel, Equation4PerClass) {
  const auto m = tiny_model();
  EXPECT_NEAR(m.system_failure_given_class(0), 0.2 * 0.9 + 0.5 * 0.1, 1e-12);
  EXPECT_NEAR(m.system_failure_given_class(1), 0.3 * 0.6 + 0.9 * 0.4, 1e-12);
}

TEST(SequentialModel, ProfileCompatibilityEnforced) {
  const auto m = tiny_model();
  const DemandProfile wrong({"x", "y"}, {0.5, 0.5});
  EXPECT_FALSE(m.compatible_with(wrong));
  EXPECT_THROW(static_cast<void>(m.system_failure_probability(wrong)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(m.decompose(wrong)), std::invalid_argument);
}

TEST(SequentialModel, FloorIsLowerBoundUnderMachineImprovement) {
  const auto m = paper::example_model();
  const auto field = paper::field_profile();
  const double floor = m.failure_floor(field);
  // Even a perfect machine (factor 0) cannot beat the floor.
  const auto perfect = m.with_uniform_machine_improvement(0.0);
  EXPECT_NEAR(perfect.system_failure_probability(field), floor, 1e-12);
  for (const double factor : {0.9, 0.5, 0.1, 0.01}) {
    EXPECT_GE(m.with_uniform_machine_improvement(factor)
                  .system_failure_probability(field),
              floor - 1e-12);
  }
}

TEST(SequentialModel, MachineImprovementTransforms) {
  const auto m = tiny_model();
  const auto improved = m.with_machine_improvement(1, 0.5);
  EXPECT_NEAR(improved.parameters(1).p_machine_fails, 0.2, 1e-12);
  EXPECT_NEAR(improved.parameters(0).p_machine_fails, 0.1, 1e-12);
  // Human response untouched.
  EXPECT_NEAR(improved.parameters(1).p_human_fails_given_machine_fails, 0.9,
              1e-12);
  EXPECT_THROW(static_cast<void>(m.with_machine_improvement(5, 0.5)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(m.with_machine_improvement(0, -1.0)),
               std::invalid_argument);
  // Worsening clamps at 1.
  const auto worse = m.with_machine_improvement(1, 10.0);
  EXPECT_NEAR(worse.parameters(1).p_machine_fails, 1.0, 1e-12);
}

TEST(SequentialModel, ReaderImprovementScalesBothConditionals) {
  const auto m = tiny_model();
  const auto better = m.with_reader_improvement(0.5);
  EXPECT_NEAR(better.parameters(0).p_human_fails_given_machine_fails, 0.25,
              1e-12);
  EXPECT_NEAR(better.parameters(0).p_human_fails_given_machine_succeeds, 0.1,
              1e-12);
  const DemandProfile p({"a", "b"}, {0.5, 0.5});
  EXPECT_NEAR(better.system_failure_probability(p),
              0.5 * m.system_failure_probability(p), 1e-12);
}

TEST(SequentialModel, MachineIgnoredPreservesFailureButZeroesT) {
  const auto m = paper::example_model();
  const auto ignored = m.with_machine_ignored();
  const auto trial = paper::trial_profile();
  EXPECT_NEAR(ignored.system_failure_probability(trial),
              m.system_failure_probability(trial), 1e-12);
  for (std::size_t x = 0; x < m.class_count(); ++x) {
    EXPECT_NEAR(ignored.importance_index(x), 0.0, 1e-12) << x;
    EXPECT_NEAR(ignored.system_failure_given_class(x),
                m.system_failure_given_class(x), 1e-12)
        << x;
  }
  // With t = 0, machine improvement does nothing (the §6.1 mistrust limit).
  const auto improved = ignored.with_uniform_machine_improvement(0.1);
  EXPECT_NEAR(improved.system_failure_probability(trial),
              ignored.system_failure_probability(trial), 1e-12);
}

/// Property sweep: Eqs. (8), (9) and (10) are algebraically identical for
/// random models and random profiles.
class RandomModelIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModelIdentity, Eq8EqualsEq9EqualsEq10) {
  stats::Rng rng(GetParam());
  const std::size_t classes = 2 + rng.uniform_index(6);
  std::vector<std::string> names;
  std::vector<ClassConditional> params;
  std::vector<double> weights;
  for (std::size_t x = 0; x < classes; ++x) {
    names.push_back("class" + std::to_string(x));
    ClassConditional c;
    c.p_machine_fails = rng.uniform();
    c.p_human_fails_given_machine_fails = rng.uniform();
    c.p_human_fails_given_machine_succeeds = rng.uniform();
    params.push_back(c);
    weights.push_back(rng.uniform() + 0.01);
  }
  const SequentialModel m(names, params);
  const auto profile = DemandProfile::from_weights(names, weights);
  const double eq8 = m.system_failure_probability(profile);
  const double eq9 = m.system_failure_probability_eq9(profile);
  const auto eq10 = m.decompose(profile);
  EXPECT_NEAR(eq8, eq9, 1e-12);
  EXPECT_NEAR(eq8, eq10.total(), 1e-12);
  EXPECT_GE(eq8, 0.0);
  EXPECT_LE(eq8, 1.0);
  // The §6.1 floor is a lower bound whenever every t(x) >= 0 (machine
  // failures never *help* the reader); with negative t it need not be.
  bool all_t_nonnegative = true;
  for (std::size_t x = 0; x < m.class_count(); ++x) {
    all_t_nonnegative = all_t_nonnegative && m.importance_index(x) >= 0.0;
  }
  if (all_t_nonnegative) {
    EXPECT_LE(eq10.floor, eq8 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelIdentity,
                         ::testing::Range<std::uint64_t>(0, 32));

}  // namespace
}  // namespace hmdiv::core
