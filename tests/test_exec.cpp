// Tests for the exec subsystem: thread-pool correctness (exceptions,
// empty ranges, nesting) and the determinism contract — every parallel
// Monte-Carlo / sweep entry point must produce bit-identical results at
// 1 and N threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/paper_example.hpp"
#include "core/roc.hpp"
#include "core/tradeoff.hpp"
#include "core/trial_design.hpp"
#include "core/uncertainty.hpp"
#include "exec/parallel.hpp"
#include "sim/feature_world.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"
#include "stats/bootstrap.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace hmdiv {
namespace {

const exec::Config kSerial{1};
const exec::Config kWide{8};

TEST(ExecConfig, ResolvedThreadsNeverZero) {
  EXPECT_GE(exec::Config{}.resolved_threads(), 1U);
  EXPECT_EQ(exec::Config{3}.resolved_threads(), 3U);
  EXPECT_EQ(exec::Config::serial().resolved_threads(), 1U);
}

TEST(ExecConfig, EnvParsing) {
  ASSERT_EQ(setenv("HMDIV_THREADS", "6", 1), 0);
  EXPECT_EQ(exec::config_from_env().threads, 6U);
  ASSERT_EQ(setenv("HMDIV_THREADS", "not-a-number", 1), 0);
  EXPECT_EQ(exec::config_from_env().threads, 0U);
  ASSERT_EQ(setenv("HMDIV_THREADS", "0", 1), 0);
  EXPECT_EQ(exec::config_from_env().threads, 0U);
  ASSERT_EQ(unsetenv("HMDIV_THREADS"), 0);
  EXPECT_EQ(exec::config_from_env().threads, 0U);
}

TEST(ExecConfig, EnvParsingWarnsOnceNamingTheBadValue) {
  // A malformed HMDIV_THREADS used to be ignored silently, so typos like
  // "HMDIV_THREADS=2x" ran on all cores with no hint why. The fallback
  // stays the same, but the first malformed read warns on stderr with the
  // offending value; repeats stay silent (once per process).
  exec::detail::reset_env_warning();
  ASSERT_EQ(setenv("HMDIV_THREADS", "2banana", 1), 0);
  testing::internal::CaptureStderr();
  EXPECT_EQ(exec::config_from_env().threads, 0U);
  const std::string first = testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("HMDIV_THREADS"), std::string::npos);
  EXPECT_NE(first.find("2banana"), std::string::npos);

  ASSERT_EQ(setenv("HMDIV_THREADS", "9999999", 1), 0);
  testing::internal::CaptureStderr();
  EXPECT_EQ(exec::config_from_env().threads, 0U);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

  // Well-formed values never warn, even with the once-flag reset.
  exec::detail::reset_env_warning();
  ASSERT_EQ(setenv("HMDIV_THREADS", "4", 1), 0);
  testing::internal::CaptureStderr();
  EXPECT_EQ(exec::config_from_env().threads, 4U);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  ASSERT_EQ(unsetenv("HMDIV_THREADS"), 0);
  exec::detail::reset_env_warning();
}

TEST(ExecChunks, ChunkCountCoversRange) {
  EXPECT_EQ(exec::chunk_count(0, 10), 0U);
  EXPECT_EQ(exec::chunk_count(1, 10), 1U);
  EXPECT_EQ(exec::chunk_count(10, 10), 1U);
  EXPECT_EQ(exec::chunk_count(11, 10), 2U);
  EXPECT_EQ(exec::chunk_count(5, 0), 5U);  // zero grain treated as 1
}

TEST(ExecParallelFor, EmptyRangeIsNoOp) {
  int calls = 0;
  exec::parallel_for(0, 8, [&](std::size_t) { ++calls; }, kWide);
  EXPECT_EQ(calls, 0);
}

TEST(ExecParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  exec::parallel_for(
      kN, 64, [&](std::size_t i) { visits[i].fetch_add(1); }, kWide);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ExecParallelFor, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      exec::parallel_for(
          1000, 8,
          [](std::size_t i) {
            if (i == 500) throw std::runtime_error("boom");
          },
          kWide),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> count{0};
  exec::parallel_for(100, 8, [&](std::size_t) { ++count; }, kWide);
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecParallelFor, NestedUseRunsInline) {
  std::vector<std::atomic<int>> visits(64 * 64);
  exec::parallel_for(
      64, 1,
      [&](std::size_t outer) {
        exec::parallel_for(
            64, 1,
            [&](std::size_t inner) { visits[outer * 64 + inner].fetch_add(1); },
            kWide);
      },
      kWide);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ExecParallelReduce, OrderedSumMatchesSerial) {
  constexpr std::size_t kN = 100'000;
  std::vector<double> values(kN);
  stats::Rng rng(11);
  for (double& v : values) v = rng.uniform() - 0.5;
  auto sum_chunk = [&](std::size_t begin, std::size_t end, std::size_t) {
    double s = 0.0;
    for (std::size_t i = begin; i < end; ++i) s += values[i];
    return s;
  };
  auto add = [](double a, double b) { return a + b; };
  const double serial =
      exec::parallel_reduce(kN, 512, 0.0, sum_chunk, add, kSerial);
  const double wide = exec::parallel_reduce(kN, 512, 0.0, sum_chunk, add, kWide);
  // Bit-identical, not just close: the fold order is fixed by the chunks.
  EXPECT_EQ(serial, wide);
}

TEST(ExecDeterminism, BootstrapIdenticalAcrossThreadCounts) {
  std::vector<double> sample(500);
  stats::Rng fill(21);
  for (double& v : sample) v = fill.normal(1.0, 2.0);
  const auto mean = [](std::span<const double> s) {
    return std::accumulate(s.begin(), s.end(), 0.0) /
           static_cast<double>(s.size());
  };
  stats::Rng rng_a(7), rng_b(7);
  const auto serial =
      stats::bootstrap_percentile(sample, mean, rng_a, 2000, 0.95, kSerial);
  const auto wide =
      stats::bootstrap_percentile(sample, mean, rng_b, 2000, 0.95, kWide);
  EXPECT_EQ(serial.estimate, wide.estimate);
  EXPECT_EQ(serial.lower, wide.lower);
  EXPECT_EQ(serial.upper, wide.upper);
  EXPECT_EQ(serial.standard_error, wide.standard_error);
  // Both consumed exactly one base draw from the caller's generator.
  EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
}

TEST(ExecDeterminism, PairedBootstrapIdenticalAcrossThreadCounts) {
  std::vector<double> x(300), y(300);
  stats::Rng fill(22);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = fill.normal();
    y[i] = 0.5 * x[i] + fill.normal();
  }
  const auto diff = [](std::span<const double> a, std::span<const double> b) {
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) d += a[i] - b[i];
    return d / static_cast<double>(a.size());
  };
  stats::Rng rng_a(9), rng_b(9);
  const auto serial =
      stats::bootstrap_paired(x, y, diff, rng_a, 1000, 0.9, kSerial);
  const auto wide = stats::bootstrap_paired(x, y, diff, rng_b, 1000, 0.9, kWide);
  EXPECT_EQ(serial.lower, wide.lower);
  EXPECT_EQ(serial.upper, wide.upper);
  EXPECT_EQ(serial.standard_error, wide.standard_error);
}

TEST(ExecDeterminism, UncertaintyPredictionIdenticalAcrossThreadCounts) {
  const core::PosteriorModelSampler sampler(
      {"easy", "difficult"},
      {core::ClassCounts{800, 56, 28, 40}, core::ClassCounts{200, 82, 74, 30}});
  const auto profile = core::paper::field_profile();
  stats::Rng rng_a(31), rng_b(31);
  const auto serial = sampler.predict(profile, rng_a, 4000, 0.95, kSerial);
  const auto wide = sampler.predict(profile, rng_b, 4000, 0.95, kWide);
  EXPECT_EQ(serial.mean, wide.mean);
  EXPECT_EQ(serial.lower, wide.lower);
  EXPECT_EQ(serial.upper, wide.upper);
  EXPECT_EQ(serial.stddev, wide.stddev);
}

TEST(ExecDeterminism, TrialRunIdenticalAcrossThreadCounts) {
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  // > 2 batches so the parallel path genuinely interleaves.
  sim::TrialRunner runner(world, 3 * sim::TrialRunner::kBatchSize + 123);
  const auto serial = runner.run(1234, kSerial);
  const auto wide = runner.run(1234, kWide);
  ASSERT_EQ(serial.records.size(), wide.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].class_index, wide.records[i].class_index);
    EXPECT_EQ(serial.records[i].machine_failed, wide.records[i].machine_failed);
    EXPECT_EQ(serial.records[i].human_failed, wide.records[i].human_failed);
  }
}

TEST(ExecDeterminism, FeatureWorldTrialIdenticalAcrossThreadCounts) {
  auto world = sim::reference_feature_world();
  world.set_adaptation_enabled(false);
  sim::TrialRunner runner(world, 2 * sim::TrialRunner::kBatchSize + 7);
  const auto serial = runner.run(99, kSerial);
  const auto wide = runner.run(99, kWide);
  ASSERT_EQ(serial.records.size(), wide.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].class_index, wide.records[i].class_index);
    EXPECT_EQ(serial.records[i].machine_failed, wide.records[i].machine_failed);
    EXPECT_EQ(serial.records[i].human_failed, wide.records[i].human_failed);
  }
}

core::TradeoffAnalyzer example_tradeoff() {
  core::BinormalMachine machine;
  machine.cancer_class_means = {2.0, 0.5};
  machine.normal_class_means = {-1.5, -0.5};
  auto cancer_profile = core::DemandProfile::from_weights(
      {"easy-cancer", "hard-cancer"}, {0.9, 0.1});
  auto normal_profile = core::DemandProfile::from_weights(
      {"clear-normal", "odd-normal"}, {0.8, 0.2});
  std::vector<core::HumanFnResponse> fn = {{0.1, 0.5}, {0.3, 0.7}};
  std::vector<core::HumanFpResponse> fp = {{0.1, 0.02}, {0.3, 0.1}};
  return core::TradeoffAnalyzer(machine, cancer_profile, fn, normal_profile,
                                fp, 0.01);
}

TEST(ExecDeterminism, TradeoffSweepIdenticalAcrossThreadCounts) {
  const auto analyzer = example_tradeoff();
  std::vector<double> thresholds;
  for (int i = 0; i <= 2000; ++i) {
    thresholds.push_back(-3.0 + 6.0 * static_cast<double>(i) / 2000.0);
  }
  const auto serial = analyzer.sweep(thresholds, kSerial);
  const auto wide = analyzer.sweep(thresholds, kWide);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].system_fn, wide[i].system_fn);
    EXPECT_EQ(serial[i].system_fp, wide[i].system_fp);
    EXPECT_EQ(serial[i].ppv, wide[i].ppv);
  }
  const auto best_serial =
      analyzer.minimise_cost(100.0, 1.0, -3.0, 3.0, 5000, kSerial);
  const auto best_wide =
      analyzer.minimise_cost(100.0, 1.0, -3.0, 3.0, 5000, kWide);
  EXPECT_EQ(best_serial.threshold, best_wide.threshold);
  EXPECT_EQ(best_serial.system_fn, best_wide.system_fn);
}

TEST(ExecDeterminism, EmpiricalAucIdenticalAcrossThreadCounts) {
  stats::Rng rng(77);
  std::vector<double> positives(20'000), negatives(30'000);
  for (double& p : positives) p = rng.normal(1.0, 1.0);
  for (double& n : negatives) n = rng.normal(0.0, 1.0);
  const double serial = core::empirical_auc(positives, negatives, kSerial);
  const double wide = core::empirical_auc(positives, negatives, kWide);
  EXPECT_EQ(serial, wide);
}

TEST(ExecDeterminism, DesignCurveMatchesPointwiseCalls) {
  const auto model = core::paper::example_model();
  const auto field = core::paper::field_profile();
  std::vector<double> budgets;
  for (double b = 100.0; b <= 5000.0; b += 100.0) budgets.push_back(b);
  const auto curve = core::design_curve(model, field, budgets, kWide);
  ASSERT_EQ(curve.size(), budgets.size());
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const auto direct = core::optimal_allocation(model, field, budgets[i]);
    EXPECT_EQ(curve[i].predicted_standard_error,
              direct.predicted_standard_error);
    ASSERT_EQ(curve[i].cases.size(), direct.cases.size());
    for (std::size_t x = 0; x < direct.cases.size(); ++x) {
      EXPECT_EQ(curve[i].cases[x], direct.cases[x]);
    }
  }
}

}  // namespace
}  // namespace hmdiv
