// Service-layer tests (PR 7): protocol edges, admission shed, deadline
// expiry, reload invalidation, the zero-allocation whatif hit path, and
// the TCP server's framing / drain / fd hygiene — including SIGTERM
// against the real hmdiv_serve binary when HMDIV_SERVE_BIN is set.
#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "alloc_count.hpp"
#include "core/extrapolation.hpp"
#include "core/paper_example.hpp"
#include "exec/workspace.hpp"
#include "obs/obs.hpp"
#include "serve/admission.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

#if defined(__SANITIZE_THREAD__)
#define HMDIV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMDIV_TSAN 1
#endif
#endif
#ifndef HMDIV_TSAN
#define HMDIV_TSAN 0
#endif

namespace hmdiv {
namespace {

using namespace std::chrono_literals;

serve::Service make_service(serve::ServiceOptions options = {}) {
  return serve::Service(core::paper::example_model(),
                        core::paper::trial_profile(),
                        core::paper::field_profile(), options);
}

std::string respond(serve::Service& service, std::string_view line,
                    serve::RequestScratch& scratch) {
  std::string out;
  service.handle_line(line, scratch, out);
  return out;
}

std::string respond(serve::Service& service, std::string_view line) {
  serve::RequestScratch scratch;
  return respond(service, line, scratch);
}

/// Pulls `"name":<number>` out of a response line.
double number_field(const std::string& response, const std::string& name) {
  const std::string token = "\"" + name + "\":";
  const std::size_t at = response.find(token);
  EXPECT_NE(at, std::string::npos) << name << " missing in " << response;
  if (at == std::string::npos) return 0.0;
  return std::strtod(response.c_str() + at + token.size(), nullptr);
}

bool has_error_code(const std::string& response, const std::string& code) {
  return response.find("\"ok\":false") != std::string::npos &&
         response.find("\"code\":\"" + code + "\"") != std::string::npos;
}

class ObsGuard {
 public:
  explicit ObsGuard(bool enabled) : previous_(obs::enabled()) {
    obs::set_enabled(enabled);
  }
  ~ObsGuard() { obs::set_enabled(previous_); }

 private:
  bool previous_;
};

// --- protocol edges -------------------------------------------------------

TEST(ServeProtocolTest, MalformedJsonIsBadRequest) {
  auto service = make_service();
  const std::string out = respond(service, "{\"op\":\"health\",");
  EXPECT_TRUE(has_error_code(out, "bad_request")) << out;
  EXPECT_NE(out.find("\"id\":null"), std::string::npos) << out;
  EXPECT_EQ(out.back(), '\n');
}

TEST(ServeProtocolTest, NonObjectRootIsBadRequest) {
  auto service = make_service();
  EXPECT_TRUE(has_error_code(respond(service, "[1,2,3]"), "bad_request"));
  EXPECT_TRUE(has_error_code(respond(service, "42"), "bad_request"));
}

TEST(ServeProtocolTest, MissingOpIsBadRequest) {
  auto service = make_service();
  EXPECT_TRUE(has_error_code(respond(service, "{\"id\":1}"), "bad_request"));
}

TEST(ServeProtocolTest, UnknownOpEchoesIdWithUnknownOpCode) {
  auto service = make_service();
  const std::string out =
      respond(service, "{\"op\":\"frobnicate\",\"id\":17}");
  EXPECT_TRUE(has_error_code(out, "unknown_op")) << out;
  EXPECT_NE(out.find("\"id\":17"), std::string::npos) << out;
}

TEST(ServeProtocolTest, StringIdIsEchoedBack) {
  auto service = make_service();
  const std::string out =
      respond(service, "{\"op\":\"health\",\"id\":\"req-9\"}");
  EXPECT_NE(out.find("\"id\":\"req-9\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"ok\":true"), std::string::npos) << out;
}

TEST(ServeProtocolTest, BadParamTypesAreBadRequest) {
  auto service = make_service();
  EXPECT_TRUE(has_error_code(
      respond(service,
              "{\"op\":\"whatif\",\"params\":{\"reader_factor\":\"x\"}}"),
      "bad_request"));
  EXPECT_TRUE(has_error_code(
      respond(service, "{\"op\":\"sweep\",\"params\":{\"steps\":1}}"),
      "bad_request"));
  EXPECT_TRUE(has_error_code(
      respond(service, "{\"op\":\"uq\",\"params\":{\"credibility\":1.5}}"),
      "bad_request"));
  EXPECT_TRUE(has_error_code(
      respond(service,
              "{\"op\":\"whatif\",\"params\":{\"per_class\":{\"nope\":0.5}}}"),
      "bad_request"));
  EXPECT_TRUE(has_error_code(
      respond(service, "{\"op\":\"whatif\",\"deadline_ms\":0}"),
      "bad_request"));
}

TEST(ServeProtocolTest, EveryResponseIsOneLine) {
  auto service = make_service();
  serve::RequestScratch scratch;
  for (const char* line :
       {"{\"op\":\"health\"}", "{\"op\":\"analyze\"}", "{\"op\":\"whatif\"}",
        "{\"op\":\"metrics\"}", "not json", "{\"op\":\"nope\"}"}) {
    const std::string out = respond(service, line, scratch);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1) << out;
    EXPECT_EQ(out.back(), '\n');
  }
}

// --- results against the underlying engines -------------------------------

TEST(ServeServiceTest, WhatifMatchesExtrapolatorDirectly) {
  auto service = make_service();
  const std::string out = respond(
      service,
      "{\"op\":\"whatif\",\"params\":{\"reader_factor\":2.0,"
      "\"machine_factor\":0.5}}");
  ASSERT_NE(out.find("\"ok\":true"), std::string::npos) << out;

  core::Extrapolator direct(core::paper::example_model(),
                            core::paper::trial_profile());
  core::Scenario scenario;
  scenario.profile = core::paper::field_profile();
  scenario.reader_failure_factor = 2.0;
  scenario.machine_failure_factor = 0.5;
  const core::ScenarioResult expected = direct.evaluate(scenario);

  EXPECT_NEAR(number_field(out, "system_failure"), expected.system_failure,
              1e-12);
  EXPECT_NEAR(number_field(out, "machine_failure"), expected.machine_failure,
              1e-12);
  EXPECT_NEAR(number_field(out, "failure_floor"), expected.failure_floor,
              1e-12);
}

TEST(ServeServiceTest, WhatifSecondCallIsCacheHit) {
  auto service = make_service();
  serve::RequestScratch scratch;
  const std::string line =
      "{\"op\":\"whatif\",\"params\":{\"reader_factor\":1.5}}";
  const std::string first = respond(service, line, scratch);
  const std::string second = respond(service, line, scratch);
  EXPECT_NE(first.find("\"cached\":false"), std::string::npos) << first;
  EXPECT_NE(second.find("\"cached\":true"), std::string::npos) << second;
  EXPECT_EQ(number_field(first, "system_failure"),
            number_field(second, "system_failure"));
}

TEST(ServeServiceTest, CompareRanksByFieldFailure) {
  auto service = make_service();
  const std::string out = respond(
      service,
      "{\"op\":\"compare\",\"params\":{\"scenarios\":["
      "{\"name\":\"worse\",\"machine_factor\":4.0},"
      "{\"name\":\"better\",\"machine_factor\":0.25}]}}");
  ASSERT_NE(out.find("\"ok\":true"), std::string::npos) << out;
  const std::size_t better = out.find("\"name\":\"better\"");
  const std::size_t worse = out.find("\"name\":\"worse\"");
  ASSERT_NE(better, std::string::npos);
  ASSERT_NE(worse, std::string::npos);
  EXPECT_LT(better, worse) << out;  // lower failure ranks first
}

TEST(ServeServiceTest, SweepDeadlineExpiresMidCompute) {
  auto service = make_service();
  const std::string out = respond(
      service,
      "{\"op\":\"sweep\",\"deadline_ms\":1,"
      "\"params\":{\"steps\":100000}}");
  EXPECT_TRUE(has_error_code(out, "deadline_exceeded")) << out;
}

TEST(ServeServiceTest, UqIsDeterministicForFixedSeed) {
  auto service = make_service();
  auto service2 = make_service();
  const std::string line =
      "{\"op\":\"uq\",\"params\":{\"draws\":200,\"seed\":7}}";
  const std::string a = respond(service, line);
  const std::string b = respond(service2, line);
  ASSERT_NE(a.find("\"ok\":true"), std::string::npos) << a;
  EXPECT_EQ(number_field(a, "mean"), number_field(b, "mean"));
  EXPECT_EQ(number_field(a, "lower"), number_field(b, "lower"));
  EXPECT_EQ(number_field(a, "upper"), number_field(b, "upper"));
}

// --- admission control ----------------------------------------------------

TEST(ServeAdmissionTest, ShedsWithStructuredErrorWhenSaturated) {
  serve::ServiceOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;
  auto service = make_service(options);

  // Occupy the single slot directly, then submit a compute request.
  const auto outcome =
      service.gate().acquire(serve::Service::Clock::now() + 10s);
  ASSERT_EQ(outcome, serve::AdmissionGate::Outcome::kAdmitted);
  const std::string out = respond(service, "{\"op\":\"whatif\",\"id\":5}");
  service.gate().release();

  EXPECT_TRUE(has_error_code(out, "shed")) << out;
  EXPECT_NE(out.find("\"id\":5"), std::string::npos) << out;
}

TEST(ServeAdmissionTest, HealthBypassesTheGate) {
  serve::ServiceOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;
  auto service = make_service(options);
  ASSERT_EQ(service.gate().acquire(serve::Service::Clock::now() + 10s),
            serve::AdmissionGate::Outcome::kAdmitted);
  const std::string out = respond(service, "{\"op\":\"health\"}");
  service.gate().release();
  EXPECT_NE(out.find("\"ok\":true"), std::string::npos) << out;
}

TEST(ServeAdmissionTest, QueuedWaiterTimesOutAtDeadline) {
  serve::AdmissionGate gate({/*max_concurrent=*/1, /*max_queue=*/4});
  ASSERT_EQ(gate.acquire(serve::Service::Clock::now() + 10s),
            serve::AdmissionGate::Outcome::kAdmitted);
  EXPECT_EQ(gate.acquire(serve::Service::Clock::now() + 20ms),
            serve::AdmissionGate::Outcome::kDeadlineExceeded);
  gate.release();
}

TEST(ServeAdmissionTest, WaiterAdmittedWhenSlotFrees) {
  serve::AdmissionGate gate({/*max_concurrent=*/1, /*max_queue=*/4});
  ASSERT_EQ(gate.acquire(serve::Service::Clock::now() + 10s),
            serve::AdmissionGate::Outcome::kAdmitted);
  std::thread releaser([&] {
    std::this_thread::sleep_for(20ms);
    gate.release();
  });
  EXPECT_EQ(gate.acquire(serve::Service::Clock::now() + 10s),
            serve::AdmissionGate::Outcome::kAdmitted);
  releaser.join();
  gate.release();
}

// --- reload ---------------------------------------------------------------

TEST(ServeServiceTest, ReloadBumpsEpochAndInvalidatesCaches) {
  auto service = make_service();
  serve::RequestScratch scratch;
  const std::string line =
      "{\"op\":\"whatif\",\"params\":{\"reader_factor\":1.5}}";
  respond(service, line, scratch);
  ASSERT_NE(respond(service, line, scratch).find("\"cached\":true"),
            std::string::npos);
  EXPECT_EQ(service.epoch(), 1u);

  service.reload(core::paper::example_model(), core::paper::trial_profile(),
                 core::paper::field_profile());
  EXPECT_EQ(service.epoch(), 2u);
  // Same inputs, but the cache was cleared with the swap: miss again.
  EXPECT_NE(respond(service, line, scratch).find("\"cached\":false"),
            std::string::npos);
}

TEST(ServeServiceTest, HealthReportsEpochAndDraining) {
  auto service = make_service();
  std::string out = respond(service, "{\"op\":\"health\"}");
  EXPECT_NE(out.find("\"status\":\"ok\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"epoch\":1"), std::string::npos) << out;
  service.set_draining(true);
  out = respond(service, "{\"op\":\"health\"}");
  EXPECT_NE(out.find("\"status\":\"draining\""), std::string::npos) << out;
}

TEST(ServeServiceTest, MetricsExposePerEndpointCounters) {
  const ObsGuard obs_on(true);
  auto service = make_service();
  respond(service, "{\"op\":\"whatif\"}");
  respond(service, "{\"op\":\"whatif\"}");
  const std::string out = respond(service, "{\"op\":\"metrics\"}");
  EXPECT_NE(out.find("\"serve.whatif.requests\":2"), std::string::npos)
      << out;
  EXPECT_NE(out.find("serve.whatif.ns"), std::string::npos) << out;
}

TEST(ServeServiceTest, MetricsRenderTailQuantilesAndMax) {
  const ObsGuard obs_on(true);
  auto service = make_service();
  respond(service, "{\"op\":\"whatif\",\"params\":{\"reader_factor\":1.5}}");
  const std::string out = respond(service, "{\"op\":\"metrics\"}");
  // Every histogram entry carries the tail fields (p99.9 report-side via
  // snapshot_quantile, max straight from the snapshot).
  const std::size_t at = out.find("\"serve.whatif.ns\"");
  ASSERT_NE(at, std::string::npos) << out;
  const std::size_t entry_end = out.find('}', at);
  const std::string entry = out.substr(at, entry_end - at);
  EXPECT_NE(entry.find("\"p99\":"), std::string::npos) << entry;
  EXPECT_NE(entry.find("\"p999\":"), std::string::npos) << entry;
  EXPECT_NE(entry.find("\"max\":"), std::string::npos) << entry;
  // At least one recording happened, so neither tail field may be zero.
  EXPECT_GT(number_field(entry + "}", "p999"), 0.0) << entry;
  EXPECT_GT(number_field(entry + "}", "max"), 0.0) << entry;
}

// --- zero-allocation hit path ---------------------------------------------

TEST(ServeServiceTest, WhatifCacheHitAllocatesNothing) {
  // Metrics pointers are pre-registered, but obs stays off here so the
  // assertion pins the service path itself.
  const ObsGuard obs_off(false);
  auto service = make_service();
  serve::RequestScratch scratch;
  std::string out;
  out.reserve(4096);
  const std::string line =
      "{\"op\":\"whatif\",\"id\":12,\"params\":{\"reader_factor\":1.25,"
      "\"machine_factor\":0.75}}";

  // Warm up: fill the cache, size every scratch buffer and the thread
  // workspace arena.
  for (int i = 0; i < 3; ++i) {
    out.clear();
    service.handle_line(line, scratch, out);
    ASSERT_NE(out.find("\"ok\":true"), std::string::npos) << out;
  }
  ASSERT_NE(out.find("\"cached\":true"), std::string::npos) << out;

  const std::uint64_t before = test::allocation_count();
  for (int i = 0; i < 10; ++i) {
    out.clear();
    service.handle_line(line, scratch, out);
  }
  const std::uint64_t after = test::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "whatif cache hits must not allocate on the steady state";
  EXPECT_NE(out.find("\"cached\":true"), std::string::npos) << out;
}

// --- JSON parser ----------------------------------------------------------

TEST(ServeJsonTest, ParsesNestedDocument) {
  serve::JsonParser parser;
  auto& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  const auto result = parser.parse(
      "{\"a\":[1,2.5,-3e2],\"b\":{\"c\":\"x\\ny\"},\"t\":true,\"n\":null}",
      workspace);
  ASSERT_EQ(result.error, nullptr) << result.error;
  const serve::JsonValue* root = result.value;
  ASSERT_TRUE(root->is_object());
  const serve::JsonValue* a = root->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->item_count, 3u);
  EXPECT_EQ(a->items[0].number, 1.0);
  EXPECT_EQ(a->items[1].number, 2.5);
  EXPECT_EQ(a->items[2].number, -300.0);
  const serve::JsonValue* b = root->find("b");
  ASSERT_NE(b, nullptr);
  const serve::JsonValue* c = b->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->string(), "x\ny");
  EXPECT_TRUE(root->find("t")->boolean);
  EXPECT_TRUE(root->find("n")->is_null());
}

TEST(ServeJsonTest, RejectsMalformedInput) {
  serve::JsonParser parser;
  auto& workspace = exec::thread_workspace();
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1}x", "nul", "+1", "1.",
        "\"\\q\"", "\"\\ud800\"", "{\"a\" 1}", "[1 2]", "nan", "inf"}) {
    const exec::Workspace::Scope scope(workspace);
    const auto result = parser.parse(bad, workspace);
    EXPECT_NE(result.error, nullptr) << "accepted: " << bad;
  }
}

TEST(ServeJsonTest, RejectsOverDeepNesting) {
  serve::JsonParser parser;
  auto& workspace = exec::thread_workspace();
  const exec::Workspace::Scope scope(workspace);
  std::string deep(80, '[');
  deep += std::string(80, ']');
  const auto result = parser.parse(deep, workspace);
  EXPECT_NE(result.error, nullptr);
}

TEST(ServeJsonTest, NumberWriterEmitsNullForNonFinite) {
  std::string out;
  serve::append_json_number(out, std::nan(""));
  EXPECT_EQ(out, "null");
  out.clear();
  serve::append_json_number(out, 0.25);
  EXPECT_EQ(out, "0.25");
}

// --- TCP server -----------------------------------------------------------

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_str(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t rc =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
    } else if (rc < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

/// Reads until `lines` newline-terminated lines arrived or EOF/error.
std::vector<std::string> read_lines(int fd, std::size_t lines) {
  std::string buffer;
  char chunk[4096];
  while (std::count(buffer.begin(), buffer.end(), '\n') <
         static_cast<std::ptrdiff_t>(lines)) {
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  std::vector<std::string> result;
  std::size_t from = 0;
  for (;;) {
    const std::size_t nl = buffer.find('\n', from);
    if (nl == std::string::npos) break;
    result.push_back(buffer.substr(from, nl - from));
    from = nl + 1;
  }
  return result;
}

std::size_t open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(ServeServerTest, AnswersPipelinedRequestsInOrder) {
  auto service = make_service();
  serve::ServerOptions options;
  serve::Server server(service, options);
  server.start();

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  std::string batch;
  for (int i = 0; i < 10; ++i) {
    batch += "{\"op\":\"whatif\",\"id\":" + std::to_string(i) +
             ",\"params\":{\"reader_factor\":1.5}}\n";
  }
  ASSERT_TRUE(send_str(fd, batch));
  const std::vector<std::string> lines = read_lines(fd, 10);
  ASSERT_EQ(lines.size(), 10u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"id\":" + std::to_string(i)),
              std::string::npos)
        << lines[i];
    EXPECT_NE(lines[i].find("\"ok\":true"), std::string::npos) << lines[i];
  }
  ::close(fd);
  server.shutdown();
}

TEST(ServeServerTest, BlankAndCarriageReturnLinesAreIgnored) {
  auto service = make_service();
  serve::Server server(service, {});
  server.start();
  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_str(fd, "\r\n\n{\"op\":\"health\",\"id\":1}\r\n"));
  const auto lines = read_lines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  ::close(fd);
  server.shutdown();
}

TEST(ServeServerTest, OversizedLineGetsStructuredErrorThenClose) {
  auto service = make_service();
  serve::ServerOptions options;
  options.max_line_bytes = 1024;
  serve::Server server(service, options);
  server.start();

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  const std::string huge(4096, 'x');  // no newline: one line, too long
  ASSERT_TRUE(send_str(fd, huge));
  const auto lines = read_lines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(has_error_code(lines[0] + "\n", "oversized")) << lines[0];
  // The server closes the connection after the error line.
  char byte;
  ssize_t got;
  do {
    got = ::read(fd, &byte, 1);
  } while (got < 0 && errno == EINTR);
  EXPECT_EQ(got, 0);
  ::close(fd);
  server.shutdown();
}

TEST(ServeServerTest, ShutdownDrainsBufferedRequests) {
  auto service = make_service();
  serve::Server server(service, {});
  server.start();

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  // One round-trip first so the connection is established server-side
  // (drain covers accepted connections, not the accept queue).
  ASSERT_TRUE(send_str(fd, "{\"op\":\"health\"}\n"));
  ASSERT_EQ(read_lines(fd, 1).size(), 1u);

  constexpr int kRequests = 20;
  std::string batch;
  for (int i = 0; i < kRequests; ++i) {
    batch += "{\"op\":\"whatif\",\"id\":" + std::to_string(i) + "}\n";
  }
  ASSERT_TRUE(send_str(fd, batch));
  // Shutdown races the connection thread on purpose: every request sent
  // before the stop signal must still be answered, whichever side wins —
  // the drain grace window picks up bytes still in flight.
  server.shutdown();
  const auto lines = read_lines(fd, kRequests);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));
  for (const auto& line : lines) {
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  }
  ::close(fd);
}

TEST(ServeServerTest, BusyConnectionsAreRejectedWithStructuredError) {
  auto service = make_service();
  serve::ServerOptions options;
  options.max_connections = 1;
  serve::Server server(service, options);
  server.start();

  const int first = connect_to(server.port());
  ASSERT_GE(first, 0);
  ASSERT_TRUE(send_str(first, "{\"op\":\"health\"}\n"));
  ASSERT_EQ(read_lines(first, 1).size(), 1u);  // first conn is live

  const int second = connect_to(server.port());
  ASSERT_GE(second, 0);
  const auto lines = read_lines(second, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(has_error_code(lines[0] + "\n", "busy")) << lines[0];
  ::close(second);
  ::close(first);
  server.shutdown();
}

TEST(ServeServerTest, LifecycleLeaksNoFileDescriptors) {
  // Settle any lazy fd creation first (gtest, locale, /proc itself).
  {
    auto service = make_service();
    serve::Server server(service, {});
    server.start();
    const int fd = connect_to(server.port());
    ASSERT_GE(fd, 0);
    ::close(fd);
    server.shutdown();
  }
  const std::size_t before = open_fd_count();
  for (int round = 0; round < 3; ++round) {
    auto service = make_service();
    serve::Server server(service, {});
    server.start();
    const int fd = connect_to(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(send_str(fd, "{\"op\":\"whatif\"}\n"));
    ASSERT_EQ(read_lines(fd, 1).size(), 1u);
    ::close(fd);
    server.shutdown();
  }
  EXPECT_EQ(open_fd_count(), before);
}

TEST(ServeServerTest, RestartAfterShutdownWorks) {
  auto service = make_service();
  serve::Server server(service, {});
  server.start();
  server.shutdown();
  EXPECT_FALSE(server.running());
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);
  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_str(fd, "{\"op\":\"health\"}\n"));
  EXPECT_EQ(read_lines(fd, 1).size(), 1u);
  ::close(fd);
  server.shutdown();
}

TEST(ServeServerTest, SendTimeoutToStuckPeerClosesAndCounts) {
  // A peer that stops reading must not wedge its connection thread past
  // the send timeout: the blocked send returns EAGAIN, the server counts
  // serve.conn.send_timeout and closes. Small SO_SNDBUF (server) and
  // SO_RCVBUF (client) make the kernel buffers overflow with a modest
  // burst; pipelined metrics responses (~kilobytes each) fill them fast.
  ObsGuard obs_on(true);
  const auto counter_value = [] {
    for (const auto& c : obs::registry_snapshot().counters) {
      if (c.name == "serve.conn.send_timeout") return c.value;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t before = counter_value();

  auto service = make_service();
  serve::ServerOptions options;
  options.send_timeout_seconds = 1;
  options.send_buffer_bytes = 4096;
  serve::Server server(service, options);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 1024;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny), 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  std::string burst;
  for (int i = 0; i < 200; ++i) {
    burst += "{\"op\":\"metrics\",\"id\":" + std::to_string(i) + "}\n";
  }
  ASSERT_TRUE(send_str(fd, burst));
  // ...and never read. The server's first blocked send times out after
  // ~1 s; poll the counter rather than sleeping a fixed worst case.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (counter_value() == before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GT(counter_value(), before);

  // The server abandoned the connection: draining it now ends in EOF (or
  // a reset) well before the peer could ever have received every reply.
  char sink[4096];
  ssize_t got;
  do {
    got = ::recv(fd, sink, sizeof sink, 0);
  } while (got > 0 || (got < 0 && errno == EINTR));
  EXPECT_LE(got, 0);
  ::close(fd);
  server.shutdown();
}

// --- the real binary under SIGTERM ----------------------------------------

TEST(ServeServerTest, SigtermDrainsSpawnedDaemon) {
  if (HMDIV_TSAN) {
    GTEST_SKIP() << "fork/exec is not TSan-instrumentable";
  }
  const char* binary = std::getenv("HMDIV_SERVE_BIN");
  if (binary == nullptr || *binary == '\0') {
    GTEST_SKIP() << "HMDIV_SERVE_BIN not set";
  }

  int out_pipe[2];
  ASSERT_EQ(::pipe(out_pipe), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(binary, binary, "--example", "--port", "0",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(out_pipe[1]);

  // Parse "listening on 127.0.0.1:<port>" from the daemon's stdout.
  std::string banner;
  char chunk[256];
  while (banner.find('\n') == std::string::npos) {
    const ssize_t got = ::read(out_pipe[0], chunk, sizeof chunk);
    if (got < 0 && errno == EINTR) continue;
    ASSERT_GT(got, 0) << "daemon exited before printing its banner";
    banner.append(chunk, static_cast<std::size_t>(got));
  }
  const std::size_t colon = banner.rfind(':', banner.find('\n'));
  ASSERT_NE(colon, std::string::npos) << banner;
  const int port = std::atoi(banner.c_str() + colon + 1);
  ASSERT_GT(port, 0) << banner;

  const int fd = connect_to(static_cast<std::uint16_t>(port));
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_str(fd, "{\"op\":\"whatif\",\"id\":1}\n"));
  const auto lines = read_lines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::close(fd);
  ::close(out_pipe[0]);
}

}  // namespace
}  // namespace hmdiv
