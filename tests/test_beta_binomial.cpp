// Unit tests for stats/beta_binomial.hpp — modelling reader heterogeneity.
#include "stats/beta_binomial.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace hmdiv::stats {
namespace {

std::vector<CountObservation> simulate(double alpha, double beta, int groups,
                                       std::uint64_t trials_per_group,
                                       Rng& rng) {
  std::vector<CountObservation> out;
  out.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    const double p = rng.beta(alpha, beta);
    CountObservation o;
    o.trials = trials_per_group;
    o.failures = rng.binomial(trials_per_group, p);
    out.push_back(o);
  }
  return out;
}

TEST(BetaBinomial, FitRecoversMeanAndOverdispersion) {
  Rng rng(555);
  // alpha=4, beta=16: mean 0.2, rho = 1/21 ~ 0.048.
  const auto data = simulate(4.0, 16.0, 200, 150, rng);
  const auto moments = fit_beta_binomial_moments(data);
  EXPECT_NEAR(moments.mean(), 0.2, 0.03);
  EXPECT_NEAR(moments.rho(), 1.0 / 21.0, 0.03);
  const auto mle = fit_beta_binomial_mle(data);
  EXPECT_NEAR(mle.mean(), 0.2, 0.03);
  EXPECT_NEAR(mle.rho(), 1.0 / 21.0, 0.03);
}

TEST(BetaBinomial, MleDoesNotDegradeLikelihood) {
  Rng rng(556);
  const auto data = simulate(2.0, 8.0, 100, 80, rng);
  const auto moments = fit_beta_binomial_moments(data);
  const auto mle = fit_beta_binomial_mle(data);
  EXPECT_GE(beta_binomial_log_likelihood(data, mle.alpha, mle.beta),
            beta_binomial_log_likelihood(data, moments.alpha, moments.beta) -
                1e-9);
}

TEST(BetaBinomial, HomogeneousDataYieldsTinyRho) {
  Rng rng(557);
  // Plain binomial data: all groups share p = 0.3.
  std::vector<CountObservation> data;
  for (int g = 0; g < 150; ++g) {
    CountObservation o;
    o.trials = 200;
    o.failures = rng.binomial(200, 0.3);
    data.push_back(o);
  }
  const auto fit = fit_beta_binomial_moments(data);
  EXPECT_LT(fit.rho(), 0.02);
  EXPECT_NEAR(fit.mean(), 0.3, 0.02);
}

TEST(BetaBinomial, LikelihoodPrefersTrueParameters) {
  Rng rng(558);
  const auto data = simulate(3.0, 12.0, 300, 100, rng);
  const double at_truth = beta_binomial_log_likelihood(data, 3.0, 12.0);
  const double far_off = beta_binomial_log_likelihood(data, 50.0, 10.0);
  EXPECT_GT(at_truth, far_off);
}

TEST(BetaBinomial, RejectsBadInput) {
  const std::vector<CountObservation> empty;
  EXPECT_THROW(fit_beta_binomial_moments(empty), std::invalid_argument);
  std::vector<CountObservation> inconsistent{{5, 3}};  // failures > trials
  EXPECT_THROW(fit_beta_binomial_moments(inconsistent), std::invalid_argument);
  std::vector<CountObservation> no_trials{{0, 0}};
  EXPECT_THROW(fit_beta_binomial_moments(no_trials), std::invalid_argument);
  std::vector<CountObservation> ok{{2, 10}};
  EXPECT_THROW(beta_binomial_log_likelihood(ok, 0.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::stats
