// Cross-module integration tests: the full paper workflow end to end, and
// consistency between the closed-form core models and the simulators.
#include <gtest/gtest.h>

#include "core/design_advisor.hpp"
#include "core/extrapolation.hpp"
#include "core/paper_example.hpp"
#include "core/parallel_model.hpp"
#include "rbd/conditional.hpp"
#include "sim/estimation.hpp"
#include "sim/ground_truth.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"

namespace hmdiv {
namespace {

/// The whole Section-5 workflow against a simulated trial:
/// run trial -> estimate parameters -> extrapolate to the field ->
/// rank design improvements. Every stage must land near the paper.
TEST(Integration, FullPaperWorkflow) {
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  sim::TrialRunner runner(world, 50000);
  stats::Rng rng(2003);  // DSN 2003
  const auto data = runner.run(rng);

  const auto estimate = sim::estimate_sequential_model(data);
  const auto fitted = estimate.fitted_model();

  core::Extrapolator extrapolator(fitted, core::paper::trial_profile());
  EXPECT_NEAR(extrapolator.trial_failure_probability(), 0.235, 0.01);
  EXPECT_NEAR(extrapolator.predict_for_profile(core::paper::field_profile()),
              0.189, 0.01);

  core::DesignAdvisor advisor(fitted, core::paper::field_profile());
  EXPECT_EQ(advisor.best_target_class(), core::paper::kDifficult);
  const auto ranked = advisor.rank(
      {core::ImprovementCandidate{"easy x10", core::paper::kEasy, 0.1},
       core::ImprovementCandidate{"difficult x10", core::paper::kDifficult,
                                  0.1}});
  EXPECT_EQ(ranked[0].name, "difficult x10");
}

/// The sequential and parallel formalisms agree when the parallel
/// assumptions hold, and the RBD layer reproduces both.
TEST(Integration, ThreeFormalismsAgreeOnTheParallelWorld) {
  core::ParallelClassConditional easy;
  easy.p_machine_misses = 0.07;
  easy.p_human_misses = 0.12;
  easy.p_human_misclassifies = 0.1;
  core::ParallelClassConditional difficult;
  difficult.p_machine_misses = 0.41;
  difficult.p_human_misses = 0.55;
  difficult.p_human_misclassifies = 0.25;
  const core::ParallelDetectionModel parallel({"easy", "difficult"},
                                              {easy, difficult});
  const core::DemandProfile profile({"easy", "difficult"}, {0.8, 0.2});

  // Formalism 1: the parallel model's own Eq. (1).
  const double direct = parallel.system_failure_probability(profile);

  // Formalism 2: embedded into the sequential model (Eq. 8).
  const double sequential =
      parallel.to_sequential().system_failure_probability(profile);

  // Formalism 3: the Fig. 2 RBD evaluated per class and mixed.
  const rbd::DemandConditionalRbd diagram(
      core::ParallelDetectionModel::structure(),
      {{1 - easy.p_machine_misses, 1 - easy.p_human_misses,
        1 - easy.p_human_misclassifies},
       {1 - difficult.p_machine_misses, 1 - difficult.p_human_misses,
        1 - difficult.p_human_misclassifies}},
      stats::DiscreteDistribution({0.8, 0.2}));
  const double block_diagram = diagram.failure_probability();

  EXPECT_NEAR(direct, sequential, 1e-12);
  EXPECT_NEAR(direct, block_diagram, 1e-12);
}

/// Simulating the TabularWorld under the *field* profile must land on the
/// Eq.-(8) field prediction computed from the trial-profile model — the
/// core promise of clear-box extrapolation.
TEST(Integration, ExtrapolationPredictsSimulatedField) {
  const auto model = core::paper::example_model();
  const auto field = core::paper::field_profile();
  const double predicted = model.system_failure_probability(field);

  sim::TabularWorld field_world(model, field);
  sim::TrialRunner runner(field_world, 200000);
  stats::Rng rng(31337);
  const auto data = runner.run(rng);
  EXPECT_NEAR(data.observed_failure_rate(), predicted, 0.004);
}

/// Estimation on a world whose reader ignores the machine must produce
/// near-zero importance indices — the t(x) = 0 limit of Section 6.1.
TEST(Integration, MistrustfulReaderHasZeroImportance) {
  const auto ignored = core::paper::example_model().with_machine_ignored();
  sim::TabularWorld world(ignored, core::paper::trial_profile());
  sim::TrialRunner runner(world, 80000);
  stats::Rng rng(99);
  const auto estimate = sim::estimate_sequential_model(runner.run(rng));
  for (std::size_t x = 0; x < 2; ++x) {
    EXPECT_NEAR(estimate.classes[x].importance_index(), 0.0, 0.05) << x;
  }
  // And the association tests must find nothing.
  const auto tests = sim::association_by_class(runner.run(rng));
  for (const auto& t : tests) EXPECT_GT(t.p_value, 1e-4);
}

/// Eq. (10) covariance reproduces the gap between the true system failure
/// probability and the mean-field estimate, for the ground truth of the
/// mechanistic world as well.
TEST(Integration, CovarianceExplainsMeanFieldGap) {
  const auto model = core::paper::example_model();
  for (const auto& profile :
       {core::paper::trial_profile(), core::paper::field_profile()}) {
    const auto d = model.decompose(profile);
    const double mean_field_estimate = d.floor + d.mean_field;
    const double exact = model.system_failure_probability(profile);
    EXPECT_NEAR(exact - mean_field_estimate, d.covariance, 1e-12);
  }
}

}  // namespace
}  // namespace hmdiv
