// Unit tests for report/format.hpp.
#include "report/format.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hmdiv::report {
namespace {

TEST(Format, FixedRendersRequestedDecimals) {
  EXPECT_EQ(fixed(0.1887, 3), "0.189");
  EXPECT_EQ(fixed(0.235, 3), "0.235");
  EXPECT_EQ(fixed(1.0, 0), "1");
  EXPECT_EQ(fixed(-0.5, 2), "-0.50");
}

TEST(Format, FixedZeroDecimalsRounds) {
  EXPECT_EQ(fixed(2.5001, 0), "3");
  EXPECT_EQ(fixed(2.4999, 0), "2");
}

TEST(Format, FixedRejectsBadDecimals) {
  EXPECT_THROW(fixed(1.0, -1), std::invalid_argument);
  EXPECT_THROW(fixed(1.0, 18), std::invalid_argument);
}

TEST(Format, SigUsesSignificantDigits) {
  EXPECT_EQ(sig(0.00012345, 3), "0.000123");
  EXPECT_EQ(sig(123456.0, 3), "1.23e+05");
  EXPECT_EQ(sig(1.0, 5), "1");
}

TEST(Format, SigRejectsBadDigits) {
  EXPECT_THROW(sig(1.0, 0), std::invalid_argument);
  EXPECT_THROW(sig(1.0, 18), std::invalid_argument);
}

TEST(Format, PercentScalesByHundred) {
  EXPECT_EQ(percent(0.189), "18.9%");
  EXPECT_EQ(percent(1.0, 0), "100%");
  EXPECT_EQ(percent(0.005, 2), "0.50%");
}

TEST(Format, WithThousandsGroupsDigits) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(12860), "12,860");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-1234567), "-1,234,567");
}

TEST(Format, PadLeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Format, WithIntervalCombinesPointAndBounds) {
  EXPECT_EQ(with_interval(0.123, 0.1, 0.15), "0.123 [0.100, 0.150]");
  EXPECT_EQ(with_interval(0.5, 0.25, 0.75, 2), "0.50 [0.25, 0.75]");
}

}  // namespace
}  // namespace hmdiv::report
