// Unit + property tests for core/aggregation.hpp (§6.2 caveat, footnote 1).
#include "core/aggregation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/paper_example.hpp"
#include "stats/rng.hpp"

namespace hmdiv::core {
namespace {

SequentialModel four_class_model() {
  ClassConditional a{0.03, 0.12, 0.10};
  ClassConditional b{0.20, 0.45, 0.25};
  ClassConditional c{0.25, 0.60, 0.30};
  ClassConditional d{0.55, 0.92, 0.45};
  return SequentialModel({"a", "b", "c", "d"}, {a, b, c, d});
}

ClassPartition pairs_partition() {
  ClassPartition p;
  p.coarse_names = {"ab", "cd"};
  p.group_of = {0, 0, 1, 1};
  return p;
}

TEST(ClassPartition, Validation) {
  ClassPartition p = pairs_partition();
  EXPECT_NO_THROW(p.validate(4));
  EXPECT_THROW(p.validate(3), std::invalid_argument);
  ClassPartition out_of_range = p;
  out_of_range.group_of[0] = 7;
  EXPECT_THROW(out_of_range.validate(4), std::invalid_argument);
  ClassPartition empty_group = p;
  empty_group.group_of = {0, 0, 0, 0};
  EXPECT_THROW(empty_group.validate(4), std::invalid_argument);
  ClassPartition no_names;
  EXPECT_THROW(no_names.validate(0), std::invalid_argument);
}

TEST(Coarsen, PreservesSystemFailureInPlace) {
  const auto fine = four_class_model();
  const DemandProfile profile(fine.class_names(), {0.4, 0.3, 0.2, 0.1});
  const auto view = coarsen(fine, profile, pairs_partition());
  EXPECT_NEAR(view.model.system_failure_probability(view.profile),
              fine.system_failure_probability(profile), 1e-12);
  // Machine marginal also preserved.
  EXPECT_NEAR(view.model.machine_failure_probability(view.profile),
              fine.machine_failure_probability(profile), 1e-12);
}

TEST(Coarsen, MassIsAdditive) {
  const auto fine = four_class_model();
  const DemandProfile profile(fine.class_names(), {0.4, 0.3, 0.2, 0.1});
  const auto view = coarsen(fine, profile, pairs_partition());
  EXPECT_NEAR(view.profile[0], 0.7, 1e-12);
  EXPECT_NEAR(view.profile[1], 0.3, 1e-12);
  const auto coarse_profile = coarsen_profile(profile, pairs_partition());
  EXPECT_NEAR(coarse_profile[0], 0.7, 1e-12);
  EXPECT_NEAR(coarse_profile[1], 0.3, 1e-12);
}

TEST(Coarsen, TrivialPartitionIsIdentity) {
  const auto fine = paper::example_model();
  const auto profile = paper::trial_profile();
  ClassPartition identity;
  identity.coarse_names = fine.class_names();
  identity.group_of = {0, 1};
  const auto view = coarsen(fine, profile, identity);
  for (std::size_t x = 0; x < 2; ++x) {
    EXPECT_NEAR(view.model.parameters(x).p_machine_fails,
                fine.parameters(x).p_machine_fails, 1e-12);
    EXPECT_NEAR(view.model.importance_index(x), fine.importance_index(x),
                1e-12);
  }
}

TEST(Coarsen, RejectsZeroMassCoarseClass) {
  const auto fine = four_class_model();
  const DemandProfile profile(fine.class_names(), {0.5, 0.5, 0.0, 0.0});
  EXPECT_THROW(static_cast<void>(coarsen(fine, profile, pairs_partition())),
               std::invalid_argument);
}

TEST(SpuriousCoherence, MixtureOfMachineBlindClassesShowsPositiveT) {
  const auto demo = spurious_coherence_demo();
  // Every fine class is machine-blind.
  for (std::size_t x = 0; x < demo.fine_model.class_count(); ++x) {
    EXPECT_NEAR(demo.fine_model.importance_index(x), 0.0, 1e-12) << x;
  }
  const double t = coarse_importance_index(demo.fine_model, demo.fine_profile,
                                           demo.partition, 0);
  EXPECT_GT(t, 0.05);
  // And yet machine improvement buys nothing: PHf is the same for any PMf
  // scaling of the fine model.
  const auto improved =
      demo.fine_model.with_uniform_machine_improvement(0.01);
  EXPECT_NEAR(improved.system_failure_probability(demo.fine_profile),
              demo.fine_model.system_failure_probability(demo.fine_profile),
              1e-12);
}

TEST(AggregationBias, ZeroWithoutMixShift) {
  const auto fine = four_class_model();
  const DemandProfile trial(fine.class_names(), {0.6, 0.2, 0.12, 0.08});
  const auto result = aggregation_bias(fine, trial, trial, pairs_partition());
  EXPECT_NEAR(result.bias(), 0.0, 1e-12);
  EXPECT_NEAR(result.fine_trial_failure, result.fine_field_failure, 1e-12);
}

TEST(AggregationBias, ZeroWhenMixtureScalesUniformlyWithinClasses) {
  // The coarse mix changes but the within-class composition does not:
  // extrapolation stays exact (footnote 1's sufficient condition).
  const auto fine = four_class_model();
  const DemandProfile trial(fine.class_names(), {0.6, 0.2, 0.15, 0.05});
  // Same 3:1 and 3:1 within-class ratios, different coarse split.
  const DemandProfile field(fine.class_names(), {0.45, 0.15, 0.30, 0.10});
  const auto result = aggregation_bias(fine, trial, field, pairs_partition());
  EXPECT_NEAR(result.bias(), 0.0, 1e-12);
}

TEST(AggregationBias, NonzeroUnderHiddenMixShift) {
  const auto fine = four_class_model();
  const DemandProfile trial(fine.class_names(), {0.6, 0.2, 0.12, 0.08});
  const DemandProfile field(fine.class_names(), {0.4, 0.4, 0.05, 0.15});
  const auto result = aggregation_bias(fine, trial, field, pairs_partition());
  EXPECT_GT(std::fabs(result.bias()), 0.005);
}

TEST(AggregationBias, ValidatesProfiles) {
  const auto fine = four_class_model();
  const DemandProfile trial(fine.class_names(), {0.6, 0.2, 0.12, 0.08});
  const DemandProfile other({"w", "x", "y", "z"}, {0.25, 0.25, 0.25, 0.25});
  EXPECT_THROW(static_cast<void>(
                   aggregation_bias(fine, trial, other, pairs_partition())),
               std::invalid_argument);
}

/// Property: coarsening preserves the Eq.-(8) value in place for random
/// models, profiles and partitions.
class CoarsenProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoarsenProperty, InPlacePredictionExact) {
  stats::Rng rng(GetParam());
  const std::size_t fine_count = 3 + rng.uniform_index(6);
  std::vector<std::string> names;
  std::vector<ClassConditional> params;
  std::vector<double> weights;
  for (std::size_t x = 0; x < fine_count; ++x) {
    names.push_back("f" + std::to_string(x));
    ClassConditional c;
    c.p_machine_fails = rng.uniform();
    c.p_human_fails_given_machine_fails = rng.uniform();
    c.p_human_fails_given_machine_succeeds = rng.uniform();
    params.push_back(c);
    weights.push_back(rng.uniform() + 0.02);
  }
  const SequentialModel fine(names, params);
  const auto profile = DemandProfile::from_weights(names, weights);

  const std::size_t coarse_count = 1 + rng.uniform_index(fine_count);
  ClassPartition partition;
  for (std::size_t g = 0; g < coarse_count; ++g) {
    partition.coarse_names.push_back("g" + std::to_string(g));
  }
  partition.group_of.resize(fine_count);
  // Ensure every group is hit, then randomise the rest.
  for (std::size_t g = 0; g < coarse_count; ++g) partition.group_of[g] = g;
  for (std::size_t x = coarse_count; x < fine_count; ++x) {
    partition.group_of[x] = rng.uniform_index(coarse_count);
  }

  const auto view = coarsen(fine, profile, partition);
  EXPECT_NEAR(view.model.system_failure_probability(view.profile),
              fine.system_failure_probability(profile), 1e-12);
  EXPECT_NEAR(view.model.machine_failure_probability(view.profile),
              fine.machine_failure_probability(profile), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoarsenProperty,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace hmdiv::core
