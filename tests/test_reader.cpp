// Unit tests for sim/reader.hpp — including the automation-bias dynamics.
#include "sim/reader.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hmdiv::sim {
namespace {

ReaderModel::Config reference_config() {
  ReaderModel::Config c;
  c.skill = 1.2;
  c.detection_slope = 1.3;
  c.prompt_effectiveness = 0.7;
  c.initial_reliance = 0.2;
  c.misclassification_base = 0.05;
  c.misclassification_slope = 0.08;
  c.misclassification_max = 0.6;
  return c;
}

TEST(Reader, ValidatesConfig) {
  auto bad = reference_config();
  bad.detection_slope = 0.0;
  EXPECT_THROW(ReaderModel{bad}, std::invalid_argument);
  bad = reference_config();
  bad.prompt_effectiveness = 1.5;
  EXPECT_THROW(ReaderModel{bad}, std::invalid_argument);
  bad = reference_config();
  bad.initial_reliance = 1.0;
  EXPECT_THROW(ReaderModel{bad}, std::invalid_argument);
  bad = reference_config();
  bad.misclassification_max = 1.5;
  EXPECT_THROW(ReaderModel{bad}, std::invalid_argument);
  bad = reference_config();
  bad.reliance_floor = 0.6;
  bad.reliance_gain = 0.6;
  EXPECT_THROW(ReaderModel{bad}, std::invalid_argument);
  bad = reference_config();
  bad.prompt_recall_bias = -0.1;
  EXPECT_THROW(ReaderModel{bad}, std::invalid_argument);
}

TEST(Reader, DetectionDecreasesWithDifficulty) {
  const ReaderModel reader{reference_config()};
  double previous = 1.1;
  for (double d = -3.0; d <= 3.0; d += 0.5) {
    const double p = reader.detection_probability(d, false);
    EXPECT_LT(p, previous);
    previous = p;
  }
}

TEST(Reader, PromptAlwaysHelpsDetection) {
  const ReaderModel reader{reference_config()};
  for (double d = -3.0; d <= 3.0; d += 0.5) {
    EXPECT_GT(reader.detection_probability(d, true),
              reader.detection_probability(d, false))
        << d;
  }
}

TEST(Reader, RelianceSuppressesUnpromptedDetection) {
  const ReaderModel reader{reference_config()};
  const auto vigilant = reader.with_reliance(0.0);
  const auto complacent = reader.with_reliance(0.6);
  for (double d = -1.0; d <= 2.0; d += 0.5) {
    EXPECT_GT(vigilant.detection_probability(d, false),
              complacent.detection_probability(d, false));
    // Prompted detection is unaffected by reliance.
    EXPECT_NEAR(vigilant.detection_probability(d, true),
                complacent.detection_probability(d, true), 1e-12);
  }
  EXPECT_THROW(static_cast<void>(reader.with_reliance(1.0)),
               std::invalid_argument);
}

TEST(Reader, UnaidedProbabilityIgnoresRelianceAndPrompts) {
  const ReaderModel reader{reference_config()};
  const auto complacent = reader.with_reliance(0.9);
  for (double d = -1.0; d <= 2.0; d += 0.5) {
    EXPECT_NEAR(reader.unaided_detection_probability(d),
                complacent.unaided_detection_probability(d), 1e-12);
  }
  // Skill midpoint.
  EXPECT_NEAR(reader.unaided_detection_probability(1.2), 0.5, 1e-12);
}

TEST(Reader, MisclassificationClampsAtConfiguredMax) {
  const ReaderModel reader{reference_config()};
  EXPECT_NEAR(reader.misclassification_probability(0.0), 0.05, 1e-12);
  EXPECT_NEAR(reader.misclassification_probability(1.0), 0.13, 1e-12);
  EXPECT_NEAR(reader.misclassification_probability(100.0), 0.6, 1e-12);
  EXPECT_NEAR(reader.misclassification_probability(-100.0), 0.0, 1e-12);
}

TEST(Reader, FailureComposesDetectionAndClassification) {
  const ReaderModel reader{reference_config()};
  for (const bool prompted : {false, true}) {
    for (double d = -1.0; d <= 2.0; d += 0.75) {
      const double p_detect = reader.detection_probability(d, prompted);
      const double p_mis = reader.misclassification_probability(d);
      EXPECT_NEAR(reader.failure_probability(d, prompted),
                  (1.0 - p_detect) + p_detect * p_mis, 1e-12);
    }
  }
}

TEST(Reader, FalseRecallRisesWithSuspiciousnessAndPrompts) {
  const ReaderModel reader{reference_config()};
  EXPECT_LT(reader.false_recall_probability(-1.0, false),
            reader.false_recall_probability(1.0, false));
  for (double s = -1.0; s <= 2.0; s += 0.5) {
    EXPECT_GT(reader.false_recall_probability(s, true),
              reader.false_recall_probability(s, false));
  }
}

TEST(Reader, DecideMatchesAnalyticRates) {
  const ReaderModel reader{reference_config()};
  stats::Rng rng(81);
  Case c;
  c.human_difficulty = 0.8;
  int failures = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    failures += reader.decide(c, true, rng).recalled ? 0 : 1;
  }
  EXPECT_NEAR(failures / static_cast<double>(n),
              reader.failure_probability(0.8, true), 0.01);
}

TEST(Reader, StaticReaderDoesNotAdapt) {
  ReaderModel reader{reference_config()};  // adaptation_rate = 0
  const double before = reader.reliance();
  for (int i = 0; i < 100; ++i) reader.observe(true, true);
  EXPECT_EQ(reader.reliance(), before);
}

TEST(Reader, ReliableMachineBreedsComplacency) {
  auto config = reference_config();
  config.adaptation_rate = 0.05;
  config.reliance_floor = 0.05;
  config.reliance_gain = 0.6;
  ReaderModel reader(config);
  const double before = reader.reliance();
  // Machine prompts every case the reader verified: perceived reliability
  // climbs to 1; reliance drifts to floor + gain = 0.65.
  for (int i = 0; i < 500; ++i) reader.observe(true, true);
  EXPECT_GT(reader.reliance(), before);
  EXPECT_NEAR(reader.reliance(), 0.65, 0.02);
}

TEST(Reader, VisibleMachineMissesRestoreVigilance) {
  auto config = reference_config();
  config.adaptation_rate = 0.05;
  config.initial_reliance = 0.5;
  ReaderModel reader(config);
  // The reader keeps finding features the machine missed.
  for (int i = 0; i < 500; ++i) reader.observe(false, true);
  EXPECT_NEAR(reader.reliance(), config.reliance_floor, 0.02);
}

TEST(Reader, SilentJointMissesTeachNothing) {
  auto config = reference_config();
  config.adaptation_rate = 0.05;
  ReaderModel reader(config);
  ReaderModel control(config);
  for (int i = 0; i < 200; ++i) {
    reader.observe(false, false);  // machine silent, reader missed too
    control.observe(false, false);
  }
  // Perceived reliability unchanged => both drift identically.
  EXPECT_NEAR(reader.reliance(), control.reliance(), 1e-12);
}

TEST(Reader, SkillFactorShiftsThePsychometricCurve) {
  const ReaderModel reader{reference_config()};
  const auto junior = reader.with_skill_factor(0.5);
  for (double d = -1.0; d <= 2.0; d += 0.5) {
    EXPECT_LT(junior.unaided_detection_probability(d),
              reader.unaided_detection_probability(d));
  }
  EXPECT_THROW(static_cast<void>(reader.with_skill_factor(0.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::sim
