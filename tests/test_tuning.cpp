// Unit tests for screening/tuning.hpp and the KS test added to stats.
#include "screening/tuning.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/feature_world.hpp"
#include "stats/hypothesis.hpp"
#include "stats/special.hpp"

namespace hmdiv::screening {
namespace {

TEST(AnalyticRecallRate, DeterministicAndSane) {
  const auto world = sim::reference_feature_world();
  const auto population = PopulationGenerator::reference(0.007);
  stats::Rng a(5), b(5);
  const double r1 =
      analytic_recall_rate(population, world.reader(), world.cadt(), a, 30000);
  const double r2 =
      analytic_recall_rate(population, world.reader(), world.cadt(), b, 30000);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(r1, 0.001);
  EXPECT_LT(r1, 0.5);
  stats::Rng c(5);
  EXPECT_THROW(static_cast<void>(analytic_recall_rate(
                   population, world.reader(), world.cadt(), c, 0)),
               std::invalid_argument);
}

TEST(AnalyticRecallRate, MonotoneInThresholdShift) {
  const auto world = sim::reference_feature_world();
  const auto population = PopulationGenerator::reference(0.01);
  const std::uint64_t seed = 99;
  double previous = 2.0;
  for (const double shift : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    stats::Rng rng(seed);  // common random numbers
    const double recall = analytic_recall_rate(
        population, world.reader(), world.cadt().with_threshold_shift(shift),
        rng, 30000);
    EXPECT_LT(recall, previous) << shift;
    previous = recall;
  }
}

TEST(Tuner, HitsTheTargetRecallRate) {
  const auto world = sim::reference_feature_world();
  const auto population = PopulationGenerator::reference(0.007);
  stats::Rng rng(7);
  const double target = 0.05;
  const auto result = tune_threshold_for_recall_rate(
      population, world.reader(), world.cadt(), target, -3.0, 4.0, rng,
      30000, 40);
  EXPECT_NEAR(result.achieved_recall_rate, target, 0.002);
  // The tuned CADT really carries the solved shift.
  EXPECT_NEAR(result.tuned_cadt.config().threshold_shift,
              world.cadt().config().threshold_shift + result.threshold_shift,
              1e-12);
}

TEST(Tuner, ValidatesArguments) {
  const auto world = sim::reference_feature_world();
  const auto population = PopulationGenerator::reference(0.007);
  stats::Rng rng(8);
  EXPECT_THROW(static_cast<void>(tune_threshold_for_recall_rate(
                   population, world.reader(), world.cadt(), 0.0, -1.0, 1.0,
                   rng)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(tune_threshold_for_recall_rate(
                   population, world.reader(), world.cadt(), 0.05, 1.0, -1.0,
                   rng)),
               std::invalid_argument);
  // Unreachable target on a tiny bracket.
  EXPECT_THROW(static_cast<void>(tune_threshold_for_recall_rate(
                   population, world.reader(), world.cadt(), 0.9, -0.1, 0.1,
                   rng, 10000)),
               std::invalid_argument);
}

TEST(KolmogorovSmirnov, AcceptsMatchingDistribution) {
  stats::Rng rng(11);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(rng.normal());
  const auto result = stats::kolmogorov_smirnov_test(
      sample, [](double x) { return stats::normal_cdf(x); });
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_LT(result.statistic, 0.05);
}

TEST(KolmogorovSmirnov, RejectsShiftedDistribution) {
  stats::Rng rng(12);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(rng.normal() + 0.3);
  const auto result = stats::kolmogorov_smirnov_test(
      sample, [](double x) { return stats::normal_cdf(x); });
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KolmogorovSmirnov, ValidatesInput) {
  const std::vector<double> empty;
  EXPECT_THROW(static_cast<void>(stats::kolmogorov_smirnov_test(
                   empty, [](double) { return 0.5; })),
               std::invalid_argument);
  const std::vector<double> sample{0.0, 1.0};
  EXPECT_THROW(static_cast<void>(stats::kolmogorov_smirnov_test(
                   sample, [](double) { return 2.0; })),
               std::invalid_argument);
}

TEST(KolmogorovSmirnov, SimulatedDifficultiesMatchTheirSpec) {
  // End-use: the easy class's human difficulty must be
  // Normal(mean, sigma) as specified.
  const auto world = sim::reference_feature_world();
  const auto spec = world.generator().spec(0);
  stats::Rng rng(13);
  std::vector<double> sample;
  for (int i = 0; i < 3000; ++i) {
    sample.push_back(world.generator().sample_difficulties(0, rng).first);
  }
  const auto result = stats::kolmogorov_smirnov_test(sample, [&](double x) {
    return stats::normal_cdf((x - spec.human_difficulty_mean) /
                             spec.human_difficulty_sigma);
  });
  EXPECT_GT(result.p_value, 0.01);
}

}  // namespace
}  // namespace hmdiv::screening
