// Unit + coverage-property tests for stats/intervals.hpp.
#include "stats/intervals.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <tuple>

#include "stats/rng.hpp"

namespace hmdiv::stats {
namespace {

using IntervalFn = std::function<ProportionInterval(
    std::uint64_t, std::uint64_t, double)>;

IntervalFn method_by_name(const std::string& name) {
  if (name == "wald") return [](auto k, auto n, auto c) {
    return wald_interval(k, n, c);
  };
  if (name == "wilson") return [](auto k, auto n, auto c) {
    return wilson_interval(k, n, c);
  };
  if (name == "agresti") return [](auto k, auto n, auto c) {
    return agresti_coull_interval(k, n, c);
  };
  if (name == "clopper") return [](auto k, auto n, auto c) {
    return clopper_pearson_interval(k, n, c);
  };
  return [](auto k, auto n, auto c) { return jeffreys_interval(k, n, c); };
}

class IntervalMethod : public ::testing::TestWithParam<std::string> {};

TEST_P(IntervalMethod, BoundsAreOrderedAndClipped) {
  const auto method = method_by_name(GetParam());
  for (const std::uint64_t n : {1ULL, 5ULL, 30ULL, 1000ULL}) {
    for (std::uint64_t k = 0; k <= n; k += (n > 10 ? n / 7 : 1)) {
      const auto ci = method(k, n, 0.95);
      EXPECT_LE(0.0, ci.lower);
      EXPECT_LE(ci.lower, ci.upper);
      EXPECT_LE(ci.upper, 1.0);
    }
  }
}

TEST_P(IntervalMethod, WidthShrinksWithSampleSize) {
  const auto method = method_by_name(GetParam());
  const auto small = method(3, 10, 0.95);
  const auto large = method(300, 1000, 0.95);
  EXPECT_LT(large.width(), small.width());
}

TEST_P(IntervalMethod, HigherConfidenceIsWider) {
  const auto method = method_by_name(GetParam());
  const auto c90 = method(7, 20, 0.90);
  const auto c99 = method(7, 20, 0.99);
  EXPECT_GE(c99.width(), c90.width());
}

TEST_P(IntervalMethod, RejectsBadInput) {
  const auto method = method_by_name(GetParam());
  EXPECT_THROW(method(0, 0, 0.95), std::invalid_argument);
  EXPECT_THROW(method(5, 3, 0.95), std::invalid_argument);
  EXPECT_THROW(method(1, 3, 0.0), std::invalid_argument);
  EXPECT_THROW(method(1, 3, 1.0), std::invalid_argument);
}

/// Empirical coverage: the fraction of simulated binomial samples whose 95%
/// interval covers the true p must not be far below 0.95 (Wald is the known
/// offender; we allow it a looser floor).
TEST_P(IntervalMethod, EmpiricalCoverageNear95Percent) {
  const auto method = method_by_name(GetParam());
  Rng rng(2026);
  const double p = 0.15;
  const std::uint64_t n = 120;
  int covered = 0;
  const int replicates = 4000;
  for (int r = 0; r < replicates; ++r) {
    const std::uint64_t k = rng.binomial(n, p);
    if (method(k, n, 0.95).contains(p)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / replicates;
  const double floor = GetParam() == "wald" ? 0.90 : 0.93;
  EXPECT_GT(coverage, floor) << GetParam();
  EXPECT_LE(coverage, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Methods, IntervalMethod,
                         ::testing::Values("wald", "wilson", "agresti",
                                           "clopper", "jeffreys"));

TEST(Intervals, ClopperPearsonEdgesAreExact) {
  const auto zero = clopper_pearson_interval(0, 20, 0.95);
  EXPECT_EQ(zero.lower, 0.0);
  // Upper bound solves (1-p)^20 = 0.025 => p = 1 - 0.025^{1/20}.
  EXPECT_NEAR(zero.upper, 1.0 - std::pow(0.025, 1.0 / 20.0), 1e-9);
  const auto full = clopper_pearson_interval(20, 20, 0.95);
  EXPECT_EQ(full.upper, 1.0);
  EXPECT_NEAR(full.lower, std::pow(0.025, 1.0 / 20.0), 1e-9);
}

TEST(Intervals, WilsonContainsPointEstimate) {
  for (std::uint64_t k = 0; k <= 50; k += 5) {
    const auto ci = wilson_interval(k, 50, 0.95);
    EXPECT_TRUE(ci.contains(static_cast<double>(k) / 50.0)) << k;
  }
}

TEST(Intervals, WaldDegenerateAtExtremes) {
  // Wald at k=0 collapses to a point — the known pathology.
  const auto ci = wald_interval(0, 25, 0.95);
  EXPECT_EQ(ci.lower, 0.0);
  EXPECT_EQ(ci.upper, 0.0);
}

}  // namespace
}  // namespace hmdiv::stats
