// Unit + integration tests for core/trial_design.hpp, including a
// Monte-Carlo check of the delta-method variance formula.
#include "core/trial_design.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/paper_example.hpp"
#include "sim/estimation.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"
#include "stats/summary.hpp"

namespace hmdiv::core {
namespace {

TEST(RequiredCases, MatchesClosedForm) {
  // z=1.96, p=0.5, h=0.05 -> ~384.1 -> 385.
  EXPECT_EQ(required_cases_for_halfwidth(0.5, 0.05), 385u);
  // Smaller p needs fewer cases for the same halfwidth.
  EXPECT_LT(required_cases_for_halfwidth(0.07, 0.05),
            required_cases_for_halfwidth(0.5, 0.05));
  // Tighter halfwidth needs quadratically more cases.
  const auto wide = required_cases_for_halfwidth(0.3, 0.04);
  const auto tight = required_cases_for_halfwidth(0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(tight) / static_cast<double>(wide), 4.0,
              0.05);
  EXPECT_THROW(static_cast<void>(required_cases_for_halfwidth(1.5, 0.05)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(required_cases_for_halfwidth(0.5, 0.0)),
               std::invalid_argument);
}

TEST(VarianceCoefficients, FieldWeightDrivesTheFieldPredictionObjective) {
  // Counter-intuitive but correct: for *field-prediction* precision, the
  // easy class carries the larger coefficient — its 0.9 field weight
  // squares to 0.81 and the PHf|Ms "floor" term dominates. (Deciding where
  // to improve the machine is a different objective; see the
  // ImportanceIndexCases test.)
  const auto c = variance_coefficients(paper::example_model(),
                                       paper::field_profile());
  ASSERT_EQ(c.size(), 2u);
  EXPECT_GT(c[paper::kEasy], c[paper::kDifficult]);
  // Stripped of the profile weights, the difficult class is the more
  // uncertainty-productive per case.
  EXPECT_GT(c[paper::kDifficult] / (0.1 * 0.1),
            c[paper::kEasy] / (0.9 * 0.9));
}

TEST(ImportanceIndexCases, DifficultTNeedsFewerCasesThanEasyT) {
  // Estimating t(x) needs machine failures; the easy class's PMf = 0.07
  // makes its q1 observations rare, so pinning t(easy) = 0.04 down is far
  // more expensive than pinning t(difficult) = 0.5.
  const auto model = paper::example_model();
  const auto easy = cases_for_importance_halfwidth(
      model.parameters(paper::kEasy), 0.05);
  const auto difficult = cases_for_importance_halfwidth(
      model.parameters(paper::kDifficult), 0.05);
  EXPECT_GT(easy, 2 * difficult);
  // Both are large enough that proportional field sampling (0.1 share for
  // difficult cases) would need a much larger total trial than an
  // enriched design — the paper's "reasonably short" rationale.
  EXPECT_GT(difficult, 300u);
}

TEST(ImportanceIndexCases, Validation) {
  ClassConditional degenerate;
  degenerate.p_machine_fails = 0.0;
  EXPECT_THROW(static_cast<void>(
                   cases_for_importance_halfwidth(degenerate, 0.05)),
               std::invalid_argument);
  ClassConditional ok = paper::example_model().parameters(0);
  EXPECT_THROW(static_cast<void>(cases_for_importance_halfwidth(ok, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(cases_for_importance_halfwidth(ok, 0.05,
                                                                1.5)),
               std::invalid_argument);
  // Quadratic scaling in the halfwidth.
  EXPECT_NEAR(static_cast<double>(cases_for_importance_halfwidth(ok, 0.02)) /
                  static_cast<double>(cases_for_importance_halfwidth(ok, 0.04)),
              4.0, 0.05);
}

TEST(PredictionVariance, DecreasesWithMoreCases) {
  const auto model = paper::example_model();
  const auto field = paper::field_profile();
  const double small =
      prediction_variance(model, field, {400.0, 100.0});
  const double large =
      prediction_variance(model, field, {4000.0, 1000.0});
  EXPECT_NEAR(small / large, 10.0, 1e-9);  // exactly 1/n scaling
  EXPECT_THROW(static_cast<void>(prediction_variance(model, field, {1.0})),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(
                   prediction_variance(model, field, {0.0, 10.0})),
               std::invalid_argument);
}

TEST(OptimalAllocation, IsNoWorseThanAnyFixedProfile) {
  const auto model = paper::example_model();
  const auto field = paper::field_profile();
  const double total = 1000.0;
  const auto optimal = optimal_allocation(model, field, total);
  for (const auto& profile :
       {field, paper::trial_profile(),
        DemandProfile({"easy", "difficult"}, {0.5, 0.5})}) {
    const auto fixed = allocation_for_profile(model, field, profile, total);
    EXPECT_LE(optimal.predicted_standard_error,
              fixed.predicted_standard_error + 1e-12);
  }
  // The optimum enriches the difficult class beyond its 10% field share
  // (mildly, for this objective: the easy-class floor dominates).
  EXPECT_GT(optimal.trial_profile[paper::kDifficult], field[paper::kDifficult]);
  // Budget is spent exactly.
  EXPECT_NEAR(optimal.cases[0] + optimal.cases[1], total, 1e-9);
}

TEST(OptimalAllocation, MatchesNeymanClosedForm) {
  const auto model = paper::example_model();
  const auto field = paper::field_profile();
  const auto c = variance_coefficients(model, field);
  const auto design = optimal_allocation(model, field, 1000.0);
  // n_x - 1 proportional to sqrt(c_x).
  const double ratio0 = (design.cases[0] - 1.0) / std::sqrt(c[0]);
  const double ratio1 = (design.cases[1] - 1.0) / std::sqrt(c[1]);
  EXPECT_NEAR(ratio0, ratio1, 1e-9 * ratio0);
  EXPECT_THROW(static_cast<void>(optimal_allocation(model, field, 1.0)),
               std::invalid_argument);
}

TEST(TrialDesign, DeltaVarianceMatchesMonteCarlo) {
  // Simulate many trials at the paper's 80/20 allocation; the empirical
  // variance of the Eq.-(8) field prediction must match the delta formula.
  const auto model = paper::example_model();
  const auto field = paper::field_profile();
  const auto design = allocation_for_profile(model, field,
                                             paper::trial_profile(), 2000.0);
  stats::OnlineStats predictions;
  stats::Rng rng(20260708);
  for (int replicate = 0; replicate < 300; ++replicate) {
    sim::TabularWorld world(model, design.trial_profile);
    sim::TrialRunner runner(world, 2000);
    stats::Rng run_rng = rng.split(static_cast<std::uint64_t>(replicate));
    const auto data = runner.run(run_rng);
    const auto fitted = sim::estimate_sequential_model(data).fitted_model();
    predictions.add(fitted.system_failure_probability(field));
  }
  EXPECT_NEAR(predictions.stddev(), design.predicted_standard_error,
              0.25 * design.predicted_standard_error);
  // And the predictions are unbiased around the truth.
  EXPECT_NEAR(predictions.mean(), model.system_failure_probability(field),
              0.005);
}

TEST(AllocationForProfile, EnforcesFloorAndValidation) {
  const auto model = paper::example_model();
  const auto field = paper::field_profile();
  // A profile that nearly starves the difficult class still gets 1 case.
  const DemandProfile starved({"easy", "difficult"}, {0.9995, 0.0005});
  const auto design = allocation_for_profile(model, field, starved, 100.0);
  EXPECT_GE(design.cases[paper::kDifficult], 1.0);
  const DemandProfile wrong({"x", "y"}, {0.5, 0.5});
  EXPECT_THROW(static_cast<void>(
                   allocation_for_profile(model, field, wrong, 100.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::core
