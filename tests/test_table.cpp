// Unit tests for report/table.hpp and report/csv.hpp.
#include "report/csv.hpp"
#include "report/table.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>

namespace hmdiv::report {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsRowWithWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RejectsAlignOutOfRange) {
  Table t({"a"});
  EXPECT_THROW(t.align(1, Align::kLeft), std::invalid_argument);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"x", "y", "z"});
  t.row({"1", "2", "3"}).row({"4", "5", "6"});
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, TextRenderingAlignsColumns) {
  Table t({"name", "value"});
  t.row({"easy", "0.143"});
  t.row({"difficult", "0.605"});
  const std::string text = t.to_text();
  // Header present, separator present, rows aligned right for col 2.
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("difficult"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  // "easy" padded to the width of "difficult" (left-aligned first column).
  EXPECT_NE(text.find("easy     "), std::string::npos);
}

TEST(Table, CaptionAppearsFirst) {
  Table t({"a"});
  t.caption("My caption");
  t.row({"1"});
  EXPECT_EQ(t.to_text().rfind("My caption", 0), 0u);
}

TEST(Table, MarkdownHasSeparatorAndAlignment) {
  Table t({"k", "v"});
  t.row({"a", "1"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| k | v |"), std::string::npos);
  EXPECT_NE(md.find("|:---|---:|"), std::string::npos);
  EXPECT_NE(md.find("| a | 1 |"), std::string::npos);
}

TEST(Table, StreamOperatorMatchesToText) {
  Table t({"a"});
  t.row({"1"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_text());
}

TEST(Csv, EscapePassesPlainFieldsThrough) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(Csv, EscapeQuotesSpecialFields) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterEmitsRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"h1", "h2"});
  w.row({"a,b", "c"});
  EXPECT_EQ(os.str(), "h1,h2\n\"a,b\",c\n");
}

TEST(Csv, NumericRowRoundTripsDoubles) {
  std::ostringstream os;
  CsvWriter w(os);
  w.numeric_row({0.1, 2.0});
  const std::string line = os.str();
  EXPECT_NE(line.find("0.1"), std::string::npos);
  EXPECT_NE(line.find("2"), std::string::npos);
}

TEST(Csv, NumericRowNormalisesNanToEmptyField) {
  // Default operator<< would emit "nan"/"-nan(ind)" depending on the
  // platform; an empty cell is the portable CSV spelling of "missing".
  std::ostringstream os;
  CsvWriter w(os);
  w.numeric_row({1.0, std::numeric_limits<double>::quiet_NaN(), 3.0});
  EXPECT_EQ(os.str(), "1,,3\n");
}

TEST(Csv, NumericRowNormalisesInfinities) {
  std::ostringstream os;
  CsvWriter w(os);
  w.numeric_row({std::numeric_limits<double>::infinity(),
                 -std::numeric_limits<double>::infinity()});
  EXPECT_EQ(os.str(), "inf,-inf\n");
}

TEST(Csv, NumericRowAllNanYieldsOnlySeparators) {
  std::ostringstream os;
  CsvWriter w(os);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  w.numeric_row({nan, nan});
  EXPECT_EQ(os.str(), ",\n");
}

}  // namespace
}  // namespace hmdiv::report
