// Unit tests for stats/summary.hpp — including the covariance helpers that
// implement the cov_x(...) terms of the paper's Eqs. (3) and (10).
#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace hmdiv::stats {
namespace {

TEST(Kahan, RecoversSmallTermsInLargeSums) {
  KahanAccumulator acc;
  acc.add(1e16);
  for (int i = 0; i < 10000; ++i) acc.add(1.0);
  acc.add(-1e16);
  EXPECT_NEAR(acc.total(), 10000.0, 1.0);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  const std::vector<double> data{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double v : data) s.add(v);
  EXPECT_EQ(s.count(), data.size());
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyAndSingleton) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Mean, BasicAndErrors) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_NEAR(mean(v), 2.0, 1e-12);
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
}

TEST(SampleVariance, BasicAndErrors) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(sample_variance(v), 5.0 / 3.0, 1e-12);
  const std::vector<double> single{1.0};
  EXPECT_THROW(sample_variance(single), std::invalid_argument);
}

TEST(WeightedMean, MatchesHandComputation) {
  const std::vector<double> x{0.07, 0.41};
  const std::vector<double> w{0.8, 0.2};
  EXPECT_NEAR(weighted_mean(x, w), 0.8 * 0.07 + 0.2 * 0.41, 1e-12);
}

TEST(WeightedMean, NormalisesWeights) {
  const std::vector<double> x{1.0, 3.0};
  const std::vector<double> w{2.0, 2.0};
  EXPECT_NEAR(weighted_mean(x, w), 2.0, 1e-12);
}

TEST(WeightedMean, Errors) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> short_w{1.0};
  const std::vector<double> zero_w{0.0, 0.0};
  const std::vector<double> neg_w{1.0, -1.0};
  EXPECT_THROW(weighted_mean(x, short_w), std::invalid_argument);
  EXPECT_THROW(weighted_mean(x, zero_w), std::invalid_argument);
  EXPECT_THROW(weighted_mean(x, neg_w), std::invalid_argument);
}

TEST(WeightedCovariance, MatchesDefinition) {
  // The paper-example values: PMf(x) and t(x) under the field profile.
  const std::vector<double> p_mf{0.07, 0.41};
  const std::vector<double> t{0.04, 0.5};
  const std::vector<double> field{0.9, 0.1};
  const double e_pmf = weighted_mean(p_mf, field);
  const double e_t = weighted_mean(t, field);
  double expected = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    expected += field[i] * (p_mf[i] - e_pmf) * (t[i] - e_t);
  }
  EXPECT_NEAR(weighted_covariance(p_mf, t, field), expected, 1e-14);
  // E[xy] − E[x]E[y] identity.
  double e_xy = 0.0;
  for (std::size_t i = 0; i < 2; ++i) e_xy += field[i] * p_mf[i] * t[i];
  EXPECT_NEAR(weighted_covariance(p_mf, t, field), e_xy - e_pmf * e_t, 1e-14);
}

TEST(WeightedCovariance, SelfCovarianceIsVariance) {
  const std::vector<double> x{1.0, 2.0, 4.0};
  const std::vector<double> w{0.25, 0.5, 0.25};
  const double v = weighted_covariance(x, x, w);
  EXPECT_GT(v, 0.0);
  // Var = E[x^2] − (E[x])^2 = (0.25 + 2 + 4) − 2.25^2.
  EXPECT_NEAR(v, 6.25 - 2.25 * 2.25, 1e-12);
}

TEST(WeightedCorrelation, PerfectAndInverse) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y_same{2.0, 4.0, 6.0};
  const std::vector<double> y_anti{3.0, 2.0, 1.0};
  const std::vector<double> w{1.0, 1.0, 1.0};
  EXPECT_NEAR(weighted_correlation(x, y_same, w), 1.0, 1e-12);
  EXPECT_NEAR(weighted_correlation(x, y_anti, w), -1.0, 1e-12);
}

TEST(WeightedCorrelation, ConstantInputYieldsZero) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  const std::vector<double> w{1.0, 1.0, 1.0};
  EXPECT_EQ(weighted_correlation(x, y, w), 0.0);
}

TEST(Correlation, UnweightedMatchesWeighted) {
  const std::vector<double> x{1.0, 5.0, 2.0, 8.0};
  const std::vector<double> y{2.0, 4.0, 1.0, 9.0};
  const std::vector<double> w(4, 1.0);
  EXPECT_NEAR(correlation(x, y), weighted_correlation(x, y, w), 1e-12);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(correlation(x, bad), std::invalid_argument);
}

// Regression test pinning the interpolation convention of the shared
// quantile routine (used by both the bootstrap and the posterior credible
// intervals): Hyndman & Fan type 7, h = q·(n−1), linear interpolation —
// the same convention as numpy's default. If this test starts failing, a
// change silently moved every reported interval endpoint.
TEST(Quantiles, PinsType7InterpolationConvention) {
  std::vector<double> values{10, 9, 8, 7, 6, 5, 4, 3, 2, 1};  // unsorted
  const double qs[] = {0.0, 0.1, 0.25, 0.5, 0.9, 0.975, 1.0};
  double out[7];
  quantiles(values, qs, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 1.9);   // h = 0.9  → 1 + 0.9·(2−1)
  EXPECT_DOUBLE_EQ(out[2], 3.25);  // h = 2.25 → 3 + 0.25·(4−3)
  EXPECT_DOUBLE_EQ(out[3], 5.5);
  EXPECT_DOUBLE_EQ(out[4], 9.1);
  EXPECT_DOUBLE_EQ(out[5], 9.775);
  EXPECT_DOUBLE_EQ(out[6], 10.0);
}

TEST(Quantiles, SelectionMatchesFullSortReference) {
  Rng rng(11);
  std::vector<double> values(1'000);
  rng.fill_uniform(values);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double qs[] = {0.01, 0.025, 0.5, 0.975, 0.99};
  double out[5];
  quantiles(values, qs, out);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(out[i], sorted_quantile(sorted, qs[i])) << "q " << qs[i];
  }
}

TEST(Quantiles, CopyingOverloadAcceptsUnsortedProbabilities) {
  const std::vector<double> values{4.0, 1.0, 3.0, 2.0};
  const std::vector<double> qs{0.975, 0.025};  // descending on purpose
  const auto out = quantiles(values, qs);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 3.925);
  EXPECT_DOUBLE_EQ(out[1], 1.075);
}

TEST(Quantiles, NaNInputYieldsAllNaN) {
  std::vector<double> values{1.0, std::numeric_limits<double>::quiet_NaN(),
                             3.0};
  const double qs[] = {0.25, 0.75};
  double out[2];
  quantiles(values, qs, out);
  EXPECT_TRUE(std::isnan(out[0]));
  EXPECT_TRUE(std::isnan(out[1]));
}

TEST(Quantiles, ValidatesArguments) {
  std::vector<double> values{1.0, 2.0};
  std::vector<double> empty;
  const double qs[] = {0.5};
  const double descending[] = {0.9, 0.1};
  const double outside[] = {1.5};
  double out1[1];
  double out2[2];
  EXPECT_THROW(quantiles(empty, qs, out1), std::invalid_argument);
  EXPECT_THROW(quantiles(values, qs, out2), std::invalid_argument);
  EXPECT_THROW(quantiles(values, descending, out2), std::invalid_argument);
  EXPECT_THROW(quantiles(values, outside, out1), std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::stats
