// Unit tests for core/extrapolation.hpp (Section 5 machinery).
#include "core/extrapolation.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "core/paper_example.hpp"
#include "obs/obs.hpp"

namespace hmdiv::core {
namespace {

Extrapolator paper_extrapolator() {
  return Extrapolator(paper::example_model(), paper::trial_profile());
}

TEST(Extrapolator, ValidatesProfileClasses) {
  const DemandProfile wrong({"x", "y"}, {0.5, 0.5});
  EXPECT_THROW(Extrapolator(paper::example_model(), wrong),
               std::invalid_argument);
  const auto e = paper_extrapolator();
  EXPECT_THROW(static_cast<void>(e.predict_for_profile(wrong)),
               std::invalid_argument);
}

TEST(Extrapolator, TrialAndFieldMatchPaper) {
  const auto e = paper_extrapolator();
  EXPECT_NEAR(e.trial_failure_probability(), 0.235, 5e-4);
  EXPECT_NEAR(e.predict_for_profile(paper::field_profile()), 0.189, 5e-4);
}

TEST(Extrapolator, ScenarioDefaultsToTrialProfile) {
  const auto e = paper_extrapolator();
  Scenario s;
  s.name = "as-trialled";
  const auto r = e.evaluate(s);
  EXPECT_EQ(r.name, "as-trialled");
  EXPECT_NEAR(r.system_failure, e.trial_failure_probability(), 1e-12);
}

TEST(Extrapolator, ScenarioAppliesProfileAndMachineFactors) {
  const auto e = paper_extrapolator();
  Scenario s;
  s.name = "field + improved difficult";
  s.profile = paper::field_profile();
  s.per_class_machine_factors = {{paper::kDifficult, 0.1}};
  const auto r = e.evaluate(s);
  EXPECT_NEAR(r.system_failure, 0.171, 5e-4);  // paper's value
  EXPECT_LT(r.machine_failure,
            e.trial_model().machine_failure_probability(
                paper::field_profile()));
}

TEST(Extrapolator, ReaderFactorScalesFailure) {
  const auto e = paper_extrapolator();
  Scenario s;
  s.name = "better readers";
  s.reader_failure_factor = 0.5;
  const auto r = e.evaluate(s);
  EXPECT_NEAR(r.system_failure, 0.5 * e.trial_failure_probability(), 1e-12);
}

TEST(Extrapolator, UniformMachineFactorMovesTowardFloor) {
  const auto e = paper_extrapolator();
  Scenario s;
  s.name = "much better machine";
  s.machine_failure_factor = 0.01;
  const auto r = e.evaluate(s);
  const double floor =
      e.trial_model().failure_floor(paper::trial_profile());
  EXPECT_GT(r.system_failure, floor);
  EXPECT_LT(r.system_failure, e.trial_failure_probability());
  EXPECT_NEAR(r.failure_floor, floor, 1e-12);
}

TEST(Extrapolator, EvaluateAllPreservesOrder) {
  const auto e = paper_extrapolator();
  Scenario a;
  a.name = "a";
  Scenario b;
  b.name = "b";
  b.machine_failure_factor = 0.1;
  const auto results = e.evaluate_all({a, b});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "a");
  EXPECT_EQ(results[1].name, "b");
  EXPECT_GT(results[0].system_failure, results[1].system_failure);
}

TEST(Extrapolator, ReaderDriftRangeIsOrderedAndBracketsNominal) {
  const auto e = paper_extrapolator();
  const auto field = paper::field_profile();
  const auto [lo, hi] = e.predict_range_for_reader_drift(field, 0.8, 1.3);
  const double nominal = e.predict_for_profile(field);
  EXPECT_LT(lo, nominal);
  EXPECT_GT(hi, nominal);
  EXPECT_THROW(static_cast<void>(e.predict_range_for_reader_drift(
                   field, 1.3, 0.8)),
               std::invalid_argument);
}

/// Reads one counter from the global obs registry (0 if never registered).
std::uint64_t counter_value(const char* name) {
  for (const auto& c : obs::registry_snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

TEST(Extrapolator, EvalCacheServesRepeatedScenarios) {
  const auto e = paper_extrapolator();
  e.set_eval_cache_capacity(4);
  Scenario s;
  s.name = "field + improved difficult";
  s.profile = paper::field_profile();
  s.per_class_machine_factors = {{paper::kDifficult, 0.1}};

  obs::set_enabled(true);
  obs::Registry::global().reset();
  const auto first = e.evaluate(s);
  const auto second = e.evaluate(s);
  // The key ignores the label: same transforms under a new name must hit
  // and come back relabelled.
  s.name = "same question, new label";
  const auto relabelled = e.evaluate(s);
  obs::set_enabled(false);

  EXPECT_EQ(counter_value("core.whatif.cache_hit"), 2u);
  EXPECT_EQ(counter_value("core.whatif.cache_miss"), 1u);
  EXPECT_EQ(second.name, "field + improved difficult");
  EXPECT_EQ(relabelled.name, "same question, new label");
  for (const auto* r : {&second, &relabelled}) {
    EXPECT_EQ(r->system_failure, first.system_failure);
    EXPECT_EQ(r->machine_failure, first.machine_failure);
    EXPECT_EQ(r->failure_floor, first.failure_floor);
    EXPECT_EQ(r->decomposition.covariance, first.decomposition.covariance);
  }
}

TEST(Extrapolator, EvalCacheDistinguishesTransforms) {
  const auto e = paper_extrapolator();
  e.set_eval_cache_capacity(4);
  Scenario better;
  better.name = "better machine";
  better.machine_failure_factor = 0.5;
  Scenario worse;
  worse.name = "worse machine";
  worse.machine_failure_factor = 2.0;

  obs::set_enabled(true);
  obs::Registry::global().reset();
  const auto b = e.evaluate(better);
  const auto w = e.evaluate(worse);
  obs::set_enabled(false);

  EXPECT_EQ(counter_value("core.whatif.cache_hit"), 0u);
  EXPECT_EQ(counter_value("core.whatif.cache_miss"), 2u);
  EXPECT_LT(b.system_failure, w.system_failure);
}

TEST(Extrapolator, EvaluateBatchMatchesEvaluateBitwise) {
  // The serve layer's coalesced responses are specified byte-identical to
  // solo responses, so the batch kernel must reproduce evaluate() to the
  // last bit — EXPECT_EQ on doubles, not EXPECT_NEAR.
  const auto e = paper_extrapolator();
  const DemandProfile field = paper::field_profile();

  const ClassFactor easy_half[] = {{0, 0.5}};
  const ClassFactor both[] = {{0, 0.25}, {1, 1.75}};
  ScenarioSpec specs[6];
  specs[0] = {};  // as trialled
  specs[1].reader_failure_factor = 1.5;
  specs[2].machine_failure_factor = 0.5;
  specs[3].profile = &field;
  specs[3].reader_failure_factor = 0.75;
  specs[3].machine_failure_factor = 1.25;
  specs[4].per_class_machine_factors = easy_half;
  specs[5].profile = &field;
  specs[5].per_class_machine_factors = both;
  specs[5].reader_failure_factor = 2.0;

  ScenarioNumbers batch[6];
  e.evaluate_batch(specs, batch);

  for (std::size_t i = 0; i < 6; ++i) {
    Scenario s;
    s.reader_failure_factor = specs[i].reader_failure_factor;
    s.machine_failure_factor = specs[i].machine_failure_factor;
    for (const auto& [index, factor] : specs[i].per_class_machine_factors) {
      s.per_class_machine_factors.emplace_back(index, factor);
    }
    if (specs[i].profile != nullptr) s.profile = *specs[i].profile;
    const ScenarioResult want = e.evaluate(s);
    EXPECT_EQ(batch[i].system_failure, want.system_failure) << "spec " << i;
    EXPECT_EQ(batch[i].machine_failure, want.machine_failure) << "spec " << i;
    EXPECT_EQ(batch[i].failure_floor, want.failure_floor) << "spec " << i;
    EXPECT_EQ(batch[i].decomposition.floor, want.decomposition.floor)
        << "spec " << i;
    EXPECT_EQ(batch[i].decomposition.mean_field,
              want.decomposition.mean_field)
        << "spec " << i;
    EXPECT_EQ(batch[i].decomposition.covariance,
              want.decomposition.covariance)
        << "spec " << i;
  }
}

TEST(Extrapolator, EvaluateBatchValidatesLikeEvaluate) {
  const auto e = paper_extrapolator();
  ScenarioNumbers out[1];
  {
    ScenarioSpec bad;
    bad.machine_failure_factor = -0.5;
    EXPECT_THROW(e.evaluate_batch({&bad, 1}, out), std::invalid_argument);
  }
  {
    const ClassFactor oob[] = {{99, 0.5}};
    ScenarioSpec bad;
    bad.per_class_machine_factors = oob;
    EXPECT_THROW(e.evaluate_batch({&bad, 1}, out), std::invalid_argument);
  }
  {
    ScenarioSpec ok;
    ScenarioNumbers two[2];
    EXPECT_THROW(e.evaluate_batch({&ok, 1}, two), std::invalid_argument);
  }
}

TEST(Extrapolator, EvalCacheDisabledByDefault) {
  const auto e = paper_extrapolator();
  Scenario s;
  s.name = "nominal";
  obs::set_enabled(true);
  obs::Registry::global().reset();
  static_cast<void>(e.evaluate(s));
  static_cast<void>(e.evaluate(s));
  obs::set_enabled(false);
  EXPECT_EQ(counter_value("core.whatif.cache_hit"), 0u);
  EXPECT_EQ(counter_value("core.whatif.cache_miss"), 0u);
}

}  // namespace
}  // namespace hmdiv::core
