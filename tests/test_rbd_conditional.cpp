// Unit tests for rbd/conditional.hpp — the difficulty-function view that
// generates the covariance terms of the paper's Eq. (3).
#include "rbd/conditional.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace hmdiv::rbd {
namespace {

Structure detection_pair() {
  return Structure::any_of(
      {Structure::component(0), Structure::component(1)});
}

stats::DiscreteDistribution two_class_profile() {
  return stats::DiscreteDistribution({0.8, 0.2});
}

TEST(ConditionalRbd, ValidatesConstruction) {
  EXPECT_THROW(DemandConditionalRbd(detection_pair(), {{0.9, 0.9}},
                                    two_class_profile()),
               std::invalid_argument);  // one row for two classes
  EXPECT_THROW(DemandConditionalRbd(detection_pair(), {{0.9}, {0.9, 0.9}},
                                    two_class_profile()),
               std::invalid_argument);  // short row
  EXPECT_THROW(DemandConditionalRbd(detection_pair(),
                                    {{0.9, 1.5}, {0.9, 0.9}},
                                    two_class_profile()),
               std::invalid_argument);  // out-of-range probability
}

TEST(ConditionalRbd, MixesOverClasses) {
  // Per-class success probabilities (machine, human) in each row.
  DemandConditionalRbd rbd(detection_pair(),
                           {{0.93, 0.8}, {0.59, 0.2}}, two_class_profile());
  const double easy = 1.0 - 0.07 * 0.2;
  const double difficult = 1.0 - 0.41 * 0.8;
  EXPECT_NEAR(rbd.success_given_class(0), easy, 1e-12);
  EXPECT_NEAR(rbd.success_given_class(1), difficult, 1e-12);
  EXPECT_NEAR(rbd.success_probability(), 0.8 * easy + 0.2 * difficult, 1e-12);
  EXPECT_THROW(static_cast<void>(rbd.success_given_class(2)),
               std::invalid_argument);
}

TEST(ConditionalRbd, Equation3Identity) {
  // P(both fail) must equal PA·PB + cov, exactly.
  DemandConditionalRbd rbd(detection_pair(),
                           {{0.93, 0.8}, {0.59, 0.2}}, two_class_profile());
  const double pa = rbd.component_failure_probability(0);
  const double pb = rbd.component_failure_probability(1);
  const double cov = rbd.failure_covariance(0, 1);
  EXPECT_NEAR(rbd.joint_failure_probability(0, 1), pa * pb + cov, 1e-12);
  EXPECT_GT(cov, 0.0);  // both components are worse on the difficult class
}

TEST(ConditionalRbd, MarginalFailuresAreProfileWeighted) {
  DemandConditionalRbd rbd(detection_pair(),
                           {{0.93, 0.8}, {0.59, 0.2}}, two_class_profile());
  EXPECT_NEAR(rbd.component_failure_probability(0),
              0.8 * 0.07 + 0.2 * 0.41, 1e-12);
  EXPECT_NEAR(rbd.component_failure_probability(1), 0.8 * 0.2 + 0.2 * 0.8,
              1e-12);
}

TEST(ConditionalRbd, IndependenceAssumptionUnderestimatesFailure) {
  // With positively correlated difficulty, the naive independent estimate
  // must be optimistic (lower failure probability) for a parallel pair.
  DemandConditionalRbd rbd(detection_pair(),
                           {{0.93, 0.8}, {0.59, 0.2}}, two_class_profile());
  EXPECT_LT(rbd.failure_probability_assuming_independence(),
            rbd.failure_probability());
}

TEST(ConditionalRbd, NegativeCorrelationHelps) {
  // Machine good exactly where the human is bad and vice versa.
  DemandConditionalRbd rbd(detection_pair(),
                           {{0.99, 0.2}, {0.50, 0.95}}, two_class_profile());
  EXPECT_LT(rbd.failure_covariance(0, 1), 0.0);
  EXPECT_LT(rbd.failure_probability(),
            rbd.failure_probability_assuming_independence());
}

TEST(ConditionalRbd, CorrelationIsNormalised) {
  DemandConditionalRbd rbd(detection_pair(),
                           {{0.93, 0.8}, {0.59, 0.2}}, two_class_profile());
  const double corr = rbd.failure_correlation(0, 1);
  EXPECT_GT(corr, 0.0);
  EXPECT_LE(corr, 1.0);
  // Two classes => difficulty functions are perfectly linearly related.
  EXPECT_NEAR(corr, 1.0, 1e-9);
}

TEST(ConditionalRbd, ProfileReweighting) {
  DemandConditionalRbd rbd(detection_pair(),
                           {{0.93, 0.8}, {0.59, 0.2}}, two_class_profile());
  const stats::DiscreteDistribution field({0.9, 0.1});
  const double trial_failure = rbd.failure_probability();
  const double field_failure = rbd.failure_probability_under(field);
  // Fewer difficult cases in the field: failure probability drops.
  EXPECT_LT(field_failure, trial_failure);
  const stats::DiscreteDistribution wrong_size({1.0});
  EXPECT_THROW(static_cast<void>(rbd.failure_probability_under(wrong_size)),
               std::invalid_argument);
}

TEST(ConditionalRbd, ComponentIndexValidation) {
  DemandConditionalRbd rbd(detection_pair(),
                           {{0.93, 0.8}, {0.59, 0.2}}, two_class_profile());
  EXPECT_THROW(static_cast<void>(rbd.component_failure_probability(5)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(rbd.failure_covariance(0, 5)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::rbd
