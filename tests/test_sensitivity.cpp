// Unit + property tests for core/sensitivity.hpp.
#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/paper_example.hpp"
#include "stats/rng.hpp"

namespace hmdiv::core {
namespace {

TEST(Sensitivity, ClosedFormsOnPaperExample) {
  const auto m = paper::example_model();
  const auto field = paper::field_profile();
  const auto grads = sensitivities(m, field);
  ASSERT_EQ(grads.size(), 2u);
  // d/dPMf(x) = p(x)·t(x).
  EXPECT_NEAR(grads[paper::kEasy].d_machine_failure, 0.9 * 0.04, 1e-12);
  EXPECT_NEAR(grads[paper::kDifficult].d_machine_failure, 0.1 * 0.5, 1e-12);
  // d/dPHf|Mf(x) = p(x)·PMf(x).
  EXPECT_NEAR(grads[paper::kEasy].d_human_given_failure, 0.9 * 0.07, 1e-12);
  EXPECT_NEAR(grads[paper::kDifficult].d_human_given_failure, 0.1 * 0.41,
              1e-12);
  // d/dPHf|Ms(x) = p(x)·PMs(x).
  EXPECT_NEAR(grads[paper::kEasy].d_human_given_success, 0.9 * 0.93, 1e-12);
  EXPECT_NEAR(grads[paper::kDifficult].d_human_given_success, 0.1 * 0.59,
              1e-12);
  // d/dp(x) = PHf(x).
  EXPECT_NEAR(grads[paper::kEasy].d_profile, 0.1428, 1e-10);
  EXPECT_NEAR(grads[paper::kDifficult].d_profile, 0.605, 1e-10);
}

TEST(Sensitivity, ReaderParametersDominateInThePaperExample) {
  // A take-away of §6.1: the floor term's gradient (reader given machine
  // success) dwarfs the machine gradient on easy cases.
  const auto grads =
      sensitivities(paper::example_model(), paper::field_profile());
  EXPECT_GT(grads[paper::kEasy].d_human_given_success,
            10.0 * grads[paper::kEasy].d_machine_failure);
}

TEST(Sensitivity, MachineDerivativeMatchesFiniteDifference) {
  const auto m = paper::example_model();
  const auto field = paper::field_profile();
  const auto grads = sensitivities(m, field);
  for (std::size_t x = 0; x < m.class_count(); ++x) {
    EXPECT_NEAR(finite_difference_machine_failure(m, field, x),
                grads[x].d_machine_failure, 1e-6)
        << x;
  }
}

TEST(Sensitivity, ElasticitiesScaleCorrectly) {
  const auto m = paper::example_model();
  const auto field = paper::field_profile();
  const double failure = m.system_failure_probability(field);
  const auto grads = sensitivities(m, field);
  const auto elast = elasticities(m, field);
  for (std::size_t x = 0; x < m.class_count(); ++x) {
    EXPECT_NEAR(elast[x].d_machine_failure,
                grads[x].d_machine_failure *
                    m.parameters(x).p_machine_fails / failure,
                1e-12)
        << x;
  }
}

TEST(Sensitivity, ValidatesInput) {
  const auto m = paper::example_model();
  const DemandProfile wrong({"x", "y"}, {0.5, 0.5});
  EXPECT_THROW(static_cast<void>(sensitivities(m, wrong)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(finite_difference_machine_failure(
                   m, paper::field_profile(), 0, 0.0)),
               std::invalid_argument);
}


TEST(Sensitivity, GradientVectorMatchesPerClassFiniteDifference) {
  // The SoA-staged gradient must reproduce the single-class form exactly —
  // both evaluate the same perturbed Eq. (8) sums in the same order.
  const auto m = paper::example_model();
  const auto field = paper::field_profile();
  const auto grad = finite_difference_machine_failure_gradient(m, field);
  ASSERT_EQ(grad.size(), m.class_count());
  for (std::size_t x = 0; x < m.class_count(); ++x) {
    EXPECT_EQ(grad[x], finite_difference_machine_failure(m, field, x)) << x;
  }
}

TEST(Sensitivity, GradientVectorValidatesInput) {
  const auto m = paper::example_model();
  const auto field = paper::field_profile();
  EXPECT_THROW(static_cast<void>(
                   finite_difference_machine_failure_gradient(m, field, 0.0)),
               std::invalid_argument);
  const DemandProfile wrong({"x", "y"}, {0.5, 0.5});
  EXPECT_THROW(static_cast<void>(
                   finite_difference_machine_failure_gradient(m, wrong)),
               std::invalid_argument);
  // A boundary PMf makes the central difference undefined for that class.
  const SequentialModel boundary(
      {"a", "b"},
      {ClassConditional{0.0, 0.3, 0.1}, ClassConditional{0.5, 0.4, 0.2}});
  const DemandProfile profile({"a", "b"}, {0.5, 0.5});
  EXPECT_THROW(static_cast<void>(
                   finite_difference_machine_failure_gradient(boundary,
                                                              profile)),
               std::invalid_argument);
}

/// Property: analytic gradient equals central finite differences for random
/// models.
class GradientCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GradientCheck, FiniteDifferencesAgree) {
  stats::Rng rng(GetParam());
  const std::size_t classes = 2 + rng.uniform_index(4);
  std::vector<std::string> names;
  std::vector<ClassConditional> params;
  std::vector<double> weights;
  for (std::size_t x = 0; x < classes; ++x) {
    names.push_back("c" + std::to_string(x));
    ClassConditional c;
    c.p_machine_fails = 0.05 + 0.9 * rng.uniform();
    c.p_human_fails_given_machine_fails = rng.uniform();
    c.p_human_fails_given_machine_succeeds = rng.uniform();
    params.push_back(c);
    weights.push_back(rng.uniform() + 0.05);
  }
  const SequentialModel m(names, params);
  const auto profile = DemandProfile::from_weights(names, weights);
  const auto grads = sensitivities(m, profile);
  for (std::size_t x = 0; x < classes; ++x) {
    EXPECT_NEAR(finite_difference_machine_failure(m, profile, x),
                grads[x].d_machine_failure, 1e-5)
        << "seed=" << GetParam() << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientCheck,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace hmdiv::core
