// Cross-request micro-batching tests (PR 8, DESIGN.md §14): the
// BatchExecutor's coalescing / deadline / shed / drain contracts, and the
// Service-level guarantees the executor exists for — every coalesced
// response byte-identical to its uncoalesced form, pipelined
// multi-connection order preserved, deadlines honoured while batched,
// non-batchable requests acting as in-order barriers, and a
// zero-allocation steady state on the batched whatif miss path.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "alloc_count.hpp"
#include "core/paper_example.hpp"
#include "obs/obs.hpp"
#include "serve/batch_executor.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

#if defined(__SANITIZE_THREAD__)
#define HMDIV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMDIV_TSAN 1
#endif
#endif
#ifndef HMDIV_TSAN
#define HMDIV_TSAN 0
#endif

namespace hmdiv {
namespace {

using namespace std::chrono_literals;
using serve::BatchExecutor;

class ObsGuard {
 public:
  explicit ObsGuard(bool enabled) : previous_(obs::enabled()) {
    obs::set_enabled(enabled);
  }
  ~ObsGuard() { obs::set_enabled(previous_); }

 private:
  bool previous_;
};

serve::Service make_service(serve::ServiceOptions options = {}) {
  return serve::Service(core::paper::example_model(),
                        core::paper::trial_profile(),
                        core::paper::field_profile(), options);
}

bool has_error_code(const std::string& response, const std::string& code) {
  return response.find("\"ok\":false") != std::string::npos &&
         response.find("\"code\":\"" + code + "\"") != std::string::npos;
}

/// Runs `lines` through a solo (batch_max = 1) service one at a time —
/// the PR 7 reference responses for byte-identity comparisons.
std::vector<std::string> solo_responses(serve::ServiceOptions options,
                                        const std::vector<std::string>& lines) {
  options.batch_max = 1;
  auto service = make_service(options);
  serve::RequestScratch scratch;
  std::vector<std::string> out(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    service.handle_line(lines[i], scratch, out[i]);
  }
  return out;
}

std::vector<std::string> batched_responses(
    serve::Service& service, const std::vector<std::string>& lines) {
  std::vector<std::string_view> views(lines.begin(), lines.end());
  serve::RequestScratch scratch;
  std::vector<std::string> out;
  service.handle_lines(views, scratch, out);
  out.resize(lines.size());
  return out;
}

// --- BatchExecutor: coalescing mechanics ----------------------------------

TEST(BatchExecutorTest, CoalescesQueuedJobsUpToBatchMax) {
  std::vector<std::size_t> batch_sizes;
  std::mutex sizes_mutex;
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<bool> first_call{true};

  BatchExecutor::Options options;
  options.kinds = 1;
  options.batch_max = 4;
  options.batch_wait_us = 0;
  options.workers = 1;
  options.max_queued = 16;
  BatchExecutor executor(
      options, [&](std::size_t, std::span<BatchExecutor::Job> jobs) {
        // The first batch (the sentinel job) parks the worker so the next
        // four jobs are all queued before it looks again.
        if (first_call.exchange(false)) {
          released.wait();
          return;
        }
        const std::lock_guard<std::mutex> lock(sizes_mutex);
        batch_sizes.push_back(jobs.size());
      });

  BatchExecutor::Group group;
  BatchExecutor::Job job;
  job.kind = 0;
  job.t0 = BatchExecutor::Clock::now();
  job.deadline = job.t0 + 10s;
  job.group = &group;
  ASSERT_TRUE(executor.submit(job));  // sentinel: blocks the worker
  // Give the worker a moment to take the sentinel off the queue, then
  // pile up one full batch behind it.
  while (executor.queued() != 0) std::this_thread::sleep_for(1ms);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(executor.submit(job));
  release.set_value();
  group.wait();

  const std::lock_guard<std::mutex> lock(sizes_mutex);
  ASSERT_EQ(batch_sizes.size(), 1u)
      << "four queued jobs of one kind must drain as one batch";
  EXPECT_EQ(batch_sizes[0], 4u);
}

TEST(BatchExecutorTest, FormationWaitNeverOutlivesTheEarliestDeadline) {
  BatchExecutor::Options options;
  options.kinds = 1;
  options.batch_max = 8;
  options.batch_wait_us = 5'000'000;  // 5 s: would dominate without the bound
  options.workers = 1;
  std::atomic<std::size_t> computed{0};
  BatchExecutor executor(options,
                         [&](std::size_t, std::span<BatchExecutor::Job> jobs) {
                           computed += jobs.size();
                         });

  BatchExecutor::Group group;
  BatchExecutor::Job job;
  job.kind = 0;
  job.t0 = BatchExecutor::Clock::now();
  job.deadline = job.t0 + 50ms;
  job.group = &group;
  const auto submit_at = BatchExecutor::Clock::now();
  ASSERT_TRUE(executor.submit(job));
  group.wait();
  const auto waited = BatchExecutor::Clock::now() - submit_at;
  EXPECT_EQ(computed.load(), 1u);
  EXPECT_LT(waited, 2s)
      << "a lone job must compute at its deadline, not after batch_wait";
}

TEST(BatchExecutorTest, SubmitShedsWhenMaxQueuedReached) {
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<bool> first_call{true};

  BatchExecutor::Options options;
  options.kinds = 1;
  options.batch_max = 1;
  options.batch_wait_us = 0;
  options.workers = 1;
  options.max_queued = 2;
  BatchExecutor executor(
      options, [&](std::size_t, std::span<BatchExecutor::Job>) {
        if (first_call.exchange(false)) {
          started.set_value();
          released.wait();
        }
      });

  BatchExecutor::Group group;
  BatchExecutor::Job job;
  job.kind = 0;
  job.t0 = BatchExecutor::Clock::now();
  job.deadline = job.t0 + 10s;
  job.group = &group;
  ASSERT_TRUE(executor.submit(job));  // occupies the worker
  started.get_future().wait();
  ASSERT_TRUE(executor.submit(job));  // queued (1/2)
  ASSERT_TRUE(executor.submit(job));  // queued (2/2)
  EXPECT_FALSE(executor.submit(job)) << "beyond max_queued must shed";
  release.set_value();
  group.wait();
}

TEST(BatchExecutorTest, StopDrainsQueuedJobsAndRefusesNewOnes) {
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<bool> first_call{true};
  std::atomic<std::size_t> computed{0};

  BatchExecutor::Options options;
  options.kinds = 2;
  options.batch_max = 4;
  options.batch_wait_us = 50'000;
  options.workers = 1;
  options.max_queued = 16;
  BatchExecutor executor(
      options, [&](std::size_t, std::span<BatchExecutor::Job> jobs) {
        if (first_call.exchange(false)) {
          started.set_value();
          released.wait();
        }
        computed += jobs.size();
      });

  BatchExecutor::Group group;
  BatchExecutor::Job job;
  job.kind = 0;
  job.t0 = BatchExecutor::Clock::now();
  job.deadline = job.t0 + 10s;
  job.group = &group;
  ASSERT_TRUE(executor.submit(job));  // occupies the worker
  started.get_future().wait();
  job.kind = 1;
  ASSERT_TRUE(executor.submit(job));
  ASSERT_TRUE(executor.submit(job));
  release.set_value();
  executor.stop();  // must complete the two queued kind-1 jobs
  EXPECT_EQ(computed.load(), 3u);
  EXPECT_FALSE(executor.submit(job)) << "submit after stop must refuse";
  group.wait();
}

// --- Service: coalesced responses are byte-identical to solo --------------

TEST(ServeBatchTest, CoalescedWhatifGroupIsByteIdenticalToSolo) {
  // One worker keeps batch completion deterministic with the caches on
  // (concurrent batches would race the shared cache's hit/miss flags).
  serve::ServiceOptions options;
  options.batch_max = 8;
  options.batch_workers = 1;
  options.batch_wait_us = 1000;
  const std::vector<std::string> lines = {
      "{\"op\":\"whatif\",\"id\":1,\"params\":{\"reader_factor\":1.5}}",
      "{\"op\":\"whatif\",\"id\":2,\"params\":{\"machine_factor\":0.5}}",
      // Duplicate of id 1: solo sees a cache hit; the coalesced group
      // must render the same "cached":true.
      "{\"op\":\"whatif\",\"id\":3,\"params\":{\"reader_factor\":1.5}}",
      "{\"op\":\"whatif\",\"id\":4,\"params\":{\"per_class\":"
      "{\"easy\":0.25},\"profile\":\"field\"}}",
      // Invalid factor: identical error line expected.
      "{\"op\":\"whatif\",\"id\":5,\"params\":{\"reader_factor\":-1}}",
      // Unknown class name: bad_request rendered from inside the batch.
      "{\"op\":\"whatif\",\"id\":6,\"params\":{\"per_class\":"
      "{\"bogus\":0.5}}}",
      "{\"op\":\"whatif\",\"id\":7,\"params\":{\"reader_factor\":1.5,"
      "\"machine_factor\":0.75}}",
  };

  auto batched = make_service(options);
  ASSERT_TRUE(batched.batching());
  const std::vector<std::string> got = batched_responses(batched, lines);
  const std::vector<std::string> want = solo_responses(options, lines);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "line " << i << ": " << lines[i];
  }
  EXPECT_TRUE(has_error_code(got[4], "bad_request"));
  EXPECT_TRUE(has_error_code(got[5], "bad_request"));
}

TEST(ServeBatchTest, EveryBatchableEndpointIsByteIdenticalCoalesced) {
  serve::ServiceOptions options;
  options.batch_max = 16;
  options.batch_workers = 1;
  options.batch_wait_us = 1000;
  const std::vector<std::string> lines = {
      "{\"op\":\"analyze\",\"id\":1}",
      "{\"op\":\"whatif\",\"id\":2,\"params\":{\"reader_factor\":2.0}}",
      "{\"op\":\"sweep\",\"id\":3,\"params\":{\"steps\":32,\"points\":5,"
      "\"lo\":-2,\"hi\":2}}",
      "{\"op\":\"minimise\",\"id\":4,\"params\":{\"cost_fn\":100,"
      "\"cost_fp\":10,\"steps\":64}}",
      "{\"op\":\"uq\",\"id\":5,\"params\":{\"draws\":64,\"seed\":11,"
      "\"credibility\":0.9}}",
      "{\"op\":\"compare\",\"id\":6,\"params\":{\"scenarios\":["
      "{\"name\":\"a\",\"reader_factor\":0.5},"
      "{\"name\":\"b\",\"machine_factor\":0.5}]}}",
      // Repeats: cache-hit flags must agree with the solo sequence.
      "{\"op\":\"uq\",\"id\":7,\"params\":{\"draws\":64,\"seed\":11,"
      "\"credibility\":0.9}}",
      "{\"op\":\"whatif\",\"id\":8,\"params\":{\"reader_factor\":2.0}}",
  };

  auto batched = make_service(options);
  const std::vector<std::string> got = batched_responses(batched, lines);
  const std::vector<std::string> want = solo_responses(options, lines);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "line " << i << ": " << lines[i];
    EXPECT_NE(got[i].find("\"ok\":true"), std::string::npos) << got[i];
  }
}

TEST(ServeBatchTest, PipelinedConnectionsGetOrderedByteIdenticalResponses) {
  // Multiple workers and multiple real connections: the stress case for
  // routing responses back to the right slot. Caches off on both sides —
  // with concurrent batches the shared cache's hit flags are timing-
  // dependent, which would break byte comparison (and in production is
  // an observability difference, not a results difference).
  serve::ServiceOptions options;
  options.batch_max = 4;
  options.batch_workers = 2;
  options.batch_wait_us = 200;
  options.whatif_cache_capacity = 0;
  options.sweep_cache_capacity = 0;
  options.minimise_cache_capacity = 0;
  options.uq_cache_capacity = 0;

  constexpr std::size_t kConnections = 3;
  constexpr std::size_t kPerConnection = 12;
  std::vector<std::vector<std::string>> conn_lines(kConnections);
  for (std::size_t c = 0; c < kConnections; ++c) {
    for (std::size_t k = 0; k < kPerConnection; ++k) {
      const std::size_t id = c * 100 + k;
      std::string line;
      if (k % 3 == 2) {
        line = "{\"op\":\"uq\",\"id\":" + std::to_string(id) +
               ",\"params\":{\"draws\":32,\"seed\":" + std::to_string(id) +
               "}}";
      } else {
        line = "{\"op\":\"whatif\",\"id\":" + std::to_string(id) +
               ",\"params\":{\"reader_factor\":" +
               std::to_string(0.5 + 0.1 * static_cast<double>(k)) + "}}";
      }
      conn_lines[c].push_back(std::move(line));
    }
  }

  auto service = make_service(options);
  serve::Server server(service, {});
  server.start();

  std::vector<std::vector<std::string>> got(kConnections);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kConnections; ++c) {
    clients.emplace_back([&, c] {
      const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      ASSERT_GE(fd, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(server.port());
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof addr),
                0);
      std::string batch;
      for (const auto& line : conn_lines[c]) batch += line + "\n";
      std::size_t sent = 0;
      while (sent < batch.size()) {
        const ssize_t rc = ::send(fd, batch.data() + sent,
                                  batch.size() - sent, MSG_NOSIGNAL);
        ASSERT_GT(rc, 0);
        sent += static_cast<std::size_t>(rc);
      }
      std::string buffer;
      char chunk[8192];
      while (std::count(buffer.begin(), buffer.end(), '\n') <
             static_cast<std::ptrdiff_t>(kPerConnection)) {
        const ssize_t rc = ::read(fd, chunk, sizeof chunk);
        if (rc < 0 && errno == EINTR) continue;
        ASSERT_GT(rc, 0);
        buffer.append(chunk, static_cast<std::size_t>(rc));
      }
      std::size_t from = 0;
      for (;;) {
        const std::size_t nl = buffer.find('\n', from);
        if (nl == std::string::npos) break;
        got[c].push_back(buffer.substr(from, nl - from + 1));
        from = nl + 1;
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  server.shutdown();

  for (std::size_t c = 0; c < kConnections; ++c) {
    const std::vector<std::string> want =
        solo_responses(options, conn_lines[c]);
    ASSERT_EQ(got[c].size(), want.size()) << "connection " << c;
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[c][k], want[k])
          << "connection " << c << " line " << k << ": "
          << conn_lines[c][k];
    }
  }
}

// --- Service: deadlines, barriers, degradation ----------------------------

TEST(ServeBatchTest, DeadlineExpiredWhileBatchedIsAStructuredError) {
  serve::ServiceOptions options;
  options.batch_max = 8;
  options.batch_workers = 1;
  options.batch_wait_us = 200'000;  // 200 ms formation window
  auto service = make_service(options);

  // A lone request with a 1 ms deadline: the formation wait is bounded by
  // the deadline, and the handler then reports the expiry — well before
  // the 200 ms window.
  const std::vector<std::string> lines = {
      "{\"op\":\"uq\",\"id\":1,\"deadline_ms\":1,"
      "\"params\":{\"draws\":64,\"seed\":3}}",
  };
  const auto t0 = std::chrono::steady_clock::now();
  auto service_lines = batched_responses(service, lines);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_EQ(service_lines.size(), 1u);
  EXPECT_TRUE(has_error_code(service_lines[0], "deadline_exceeded"))
      << service_lines[0];
  EXPECT_LT(elapsed, 150ms)
      << "the formation wait must be cut short by the deadline";
}

TEST(ServeBatchTest, NonBatchableRequestIsAnInOrderBarrier) {
  const ObsGuard obs_on(true);
  serve::ServiceOptions options;
  options.batch_max = 8;
  options.batch_workers = 1;
  options.batch_wait_us = 1000;
  auto service = make_service(options);

  std::uint64_t whatif_before = 0;
  for (const auto& h : obs::registry_snapshot().histograms) {
    if (h.name == "serve.whatif.ns") whatif_before = h.count;
  }

  // Three batchable requests then `metrics`: the metrics response must
  // already observe all three completions (the barrier), not race them.
  const std::vector<std::string> lines = {
      "{\"op\":\"whatif\",\"id\":1,\"params\":{\"reader_factor\":1.1}}",
      "{\"op\":\"whatif\",\"id\":2,\"params\":{\"reader_factor\":1.2}}",
      "{\"op\":\"whatif\",\"id\":3,\"params\":{\"reader_factor\":1.3}}",
      "{\"op\":\"metrics\",\"id\":4}",
  };
  const std::vector<std::string> got = batched_responses(service, lines);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_NE(got[i].find("\"ok\":true"), std::string::npos) << got[i];
  }
  const std::string& metrics = got[3];
  const std::size_t at = metrics.find("\"serve.whatif.ns\"");
  ASSERT_NE(at, std::string::npos) << metrics;
  const std::string count_token = "\"count\":";
  const std::size_t count_at = metrics.find(count_token, at);
  ASSERT_NE(count_at, std::string::npos) << metrics;
  const std::uint64_t count = std::strtoull(
      metrics.c_str() + count_at + count_token.size(), nullptr, 10);
  EXPECT_EQ(count, whatif_before + 3)
      << "metrics must observe every earlier request of its group";
}

TEST(ServeBatchTest, BatchMaxOneDegradesToTheInlinePath) {
  const ObsGuard obs_on(true);
  std::uint64_t batches_before = 0;
  for (const auto& c : obs::registry_snapshot().counters) {
    if (c.name == "serve.batch.batches") batches_before = c.value;
  }

  serve::ServiceOptions options;
  options.batch_max = 1;
  auto service = make_service(options);
  EXPECT_FALSE(service.batching());

  const std::vector<std::string> lines = {
      "{\"op\":\"whatif\",\"id\":1,\"params\":{\"reader_factor\":1.5}}",
      "{\"op\":\"health\",\"id\":2}",
  };
  const std::vector<std::string> got = batched_responses(service, lines);
  EXPECT_NE(got[0].find("\"ok\":true"), std::string::npos) << got[0];
  EXPECT_NE(got[1].find("\"ok\":true"), std::string::npos) << got[1];

  std::uint64_t batches_after = 0;
  for (const auto& c : obs::registry_snapshot().counters) {
    if (c.name == "serve.batch.batches") batches_after = c.value;
  }
  EXPECT_EQ(batches_after, batches_before)
      << "batch_max=1 must never start the executor";
}

// --- zero-allocation batched miss path ------------------------------------

TEST(ServeBatchTest, BatchedWhatifMissPathAllocatesNothingSteadyState) {
#if HMDIV_TSAN
  GTEST_SKIP() << "allocation counting is not meaningful under TSan";
#endif
  // Cache off: every whatif is a miss and flows through the batched
  // kernel (a disabled EvalCache neither probes nor inserts, so the whole
  // submit -> coalesce -> evaluate_batch -> respond cycle must run out of
  // warm buffers). Obs off so metric recording is out of scope.
  const ObsGuard obs_off(false);
  serve::ServiceOptions options;
  options.batch_max = 4;
  options.batch_workers = 1;
  options.batch_wait_us = 100;
  options.whatif_cache_capacity = 0;
  auto service = make_service(options);

  const std::vector<std::string> lines = {
      "{\"op\":\"whatif\",\"id\":1,\"params\":{\"reader_factor\":1.25}}",
      "{\"op\":\"whatif\",\"id\":2,\"params\":{\"machine_factor\":0.75}}",
      "{\"op\":\"whatif\",\"id\":3,\"params\":{\"reader_factor\":0.5,"
      "\"machine_factor\":1.5}}",
  };
  std::vector<std::string_view> views(lines.begin(), lines.end());
  serve::RequestScratch scratch;
  std::vector<std::string> responses;

  // Warm up: grows the response strings, the executor queues, the worker's
  // thread-local scratch and the workspace arenas to steady-state size.
  for (int i = 0; i < 3; ++i) {
    service.handle_lines(views, scratch, responses);
    for (std::size_t k = 0; k < lines.size(); ++k) {
      ASSERT_NE(responses[k].find("\"ok\":true"), std::string::npos)
          << responses[k];
      ASSERT_NE(responses[k].find("\"cached\":false"), std::string::npos)
          << responses[k];
    }
  }

  const std::uint64_t before = test::allocation_count();
  for (int i = 0; i < 10; ++i) {
    service.handle_lines(views, scratch, responses);
  }
  const std::uint64_t after = test::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "the batched whatif miss path must not allocate once warm";
}

}  // namespace
}  // namespace hmdiv
