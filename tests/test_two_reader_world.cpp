// Integration tests for sim/two_reader_world.hpp: the Conclusions' "two
// readers assisted by a CADT", simulated and checked against the closed
// forms of core/multi_reader.hpp.
#include "sim/two_reader_world.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/feature_world.hpp"

namespace hmdiv::sim {
namespace {

TwoReaderWorld reference_pair() {
  const auto base = reference_feature_world();
  const ReaderModel senior = base.reader();
  const ReaderModel junior = base.reader().with_skill_factor(0.7);
  return TwoReaderWorld(base.generator(), base.cadt(), senior, junior);
}

TEST(TwoReaderWorld, RecordsAreWellFormed) {
  auto world = reference_pair();
  stats::Rng rng(91);
  const auto records = world.run(5000, rng);
  EXPECT_EQ(records.size(), 5000u);
  for (const auto& r : records) {
    EXPECT_LT(r.class_index, 2u);
    EXPECT_EQ(r.system_failed(), r.reader_a_failed && r.reader_b_failed);
  }
  EXPECT_THROW(static_cast<void>(world.run(0, rng)), std::invalid_argument);
}

TEST(TwoReaderWorld, ExactJointPredictsSimulatedSystemFailure) {
  auto world = reference_pair();
  const core::DemandProfile profile({"easy", "difficult"}, {0.8, 0.2});
  stats::Rng truth_rng(92);
  const double exact = world.exact_system_failure(profile, truth_rng, 300000);

  stats::Rng sim_rng(93);
  const auto records = world.run(250000, sim_rng);
  const auto estimate =
      estimate_two_reader_model(records, {"easy", "difficult"});
  EXPECT_NEAR(estimate.observed_system_failure, exact, 0.004);
}

TEST(TwoReaderWorld, ConditionalIndependenceModelUnderestimates) {
  // The paper-formalism model (readers independent given class + machine
  // outcome) misses the correlation induced by the shared *within-class*
  // residual difficulty: it must under-predict the exact joint failure.
  // This is the within-class analogue of the Eq. (3) covariance — the
  // repository's demonstration that class granularity matters (footnote 1).
  auto world = reference_pair();
  const core::DemandProfile profile({"easy", "difficult"}, {0.8, 0.2});
  stats::Rng rng_a(92);
  const auto conditional_independence = world.ground_truth(rng_a, 300000);
  stats::Rng rng_b(92);
  const double exact = world.exact_system_failure(profile, rng_b, 300000);
  const double modelled =
      conditional_independence.system_failure_probability(profile);
  EXPECT_LT(modelled, exact);
  // The gap is material (several % relative), not numerical noise.
  EXPECT_GT(exact - modelled, 0.002);
}

TEST(TwoReaderWorld, EstimationRecoversGroundTruth) {
  auto world = reference_pair();
  stats::Rng truth_rng(94);
  const auto truth = world.ground_truth(truth_rng, 200000);
  stats::Rng sim_rng(95);
  const auto records = world.run(200000, sim_rng);
  const auto estimate =
      estimate_two_reader_model(records, {"easy", "difficult"});
  const auto fitted = estimate.fitted_model();
  const core::DemandProfile profile({"easy", "difficult"}, {0.8, 0.2});
  // The *parameters* (per-reader conditionals) are estimable from records;
  // the fitted conditional-independence model agrees with the analytic one.
  EXPECT_NEAR(fitted.system_failure_probability(profile),
              truth.system_failure_probability(profile), 0.01);
  for (std::size_t x = 0; x < 2; ++x) {
    EXPECT_NEAR(estimate.p_machine_fails[x],
                truth.reader_a_alone().parameters(x).p_machine_fails, 0.01)
        << x;
  }
}

TEST(TwoReaderWorld, SharedMachineCorrelatesReaders) {
  // The closed form's key claim: multiplying single-reader failure rates
  // underestimates the pair's failure rate, because both readers see the
  // same machine outcome (and the same case difficulty).
  auto world = reference_pair();
  stats::Rng rng(96);
  const auto truth = world.ground_truth(rng, 200000);
  const core::DemandProfile profile({"easy", "difficult"}, {0.8, 0.2});
  EXPECT_LT(truth.system_failure_assuming_reader_independence(profile),
            truth.system_failure_probability(profile));
}

TEST(TwoReaderWorld, SecondReaderAlwaysHelps) {
  auto world = reference_pair();
  stats::Rng rng(97);
  const auto truth = world.ground_truth(rng, 100000);
  const core::DemandProfile profile({"easy", "difficult"}, {0.8, 0.2});
  const double pair_failure = truth.system_failure_probability(profile);
  EXPECT_LT(pair_failure,
            truth.reader_a_alone().system_failure_probability(profile));
  EXPECT_LT(pair_failure,
            truth.reader_b_alone().system_failure_probability(profile));
}

TEST(TwoReaderWorld, EstimatorValidatesInput) {
  EXPECT_THROW(static_cast<void>(estimate_two_reader_model({}, {})),
               std::invalid_argument);
  std::vector<TwoReaderRecord> records(1);
  records[0].class_index = 5;
  EXPECT_THROW(static_cast<void>(
                   estimate_two_reader_model(records, {"a", "b"})),
               std::invalid_argument);
  std::vector<TwoReaderRecord> one_class(3);
  EXPECT_THROW(static_cast<void>(
                   estimate_two_reader_model(one_class, {"a", "b"})),
               std::invalid_argument);  // class "b" has no cases
}

}  // namespace
}  // namespace hmdiv::sim
