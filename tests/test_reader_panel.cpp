// Unit + integration tests for sim/reader_panel.hpp (§5 item 2).
#include "sim/reader_panel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/feature_world.hpp"

namespace hmdiv::sim {
namespace {

ReaderModel::Config base_config() {
  return reference_feature_world().reader().config();
}

TEST(ReaderPanel, SampleValidatesArguments) {
  stats::Rng rng(1);
  EXPECT_THROW(static_cast<void>(ReaderPanel::sample(base_config(), 0, 0.1,
                                                     rng)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(ReaderPanel::sample(base_config(), 3, -0.1,
                                                     rng)),
               std::invalid_argument);
  EXPECT_THROW(ReaderPanel({}), std::invalid_argument);
}

TEST(ReaderPanel, ZeroSigmaYieldsIdenticalReaders) {
  stats::Rng rng(2);
  const auto panel = ReaderPanel::sample(base_config(), 5, 0.0, rng);
  ASSERT_EQ(panel.size(), 5u);
  for (std::size_t i = 1; i < panel.size(); ++i) {
    EXPECT_EQ(panel.reader(i).config().skill, panel.reader(0).config().skill);
  }
  EXPECT_THROW(static_cast<void>(panel.reader(5)), std::invalid_argument);
}

TEST(ReaderPanel, PositiveSigmaSpreadsSkill) {
  stats::Rng rng(3);
  const auto panel = ReaderPanel::sample(base_config(), 30, 0.5, rng);
  double lo = panel.reader(0).config().skill, hi = lo;
  for (std::size_t i = 1; i < panel.size(); ++i) {
    lo = std::min(lo, panel.reader(i).config().skill);
    hi = std::max(hi, panel.reader(i).config().skill);
  }
  EXPECT_GT(hi - lo, 0.5);
  EXPECT_GE(lo, 0.05);  // clamp
}

TEST(PanelTrial, AssignsCasesAcrossThePanel) {
  const auto world = reference_feature_world();
  stats::Rng rng(4);
  const auto panel = ReaderPanel::sample(base_config(), 8, 0.2, rng);
  const auto records =
      run_panel_trial(world.generator(), world.cadt(), panel, 8000, rng);
  EXPECT_EQ(records.size(), 8000u);
  std::vector<int> counts(8, 0);
  for (const auto& r : records) {
    ASSERT_LT(r.reader_index, 8u);
    ++counts[r.reader_index];
  }
  for (const int c : counts) EXPECT_GT(c, 700);  // roughly uniform
  EXPECT_THROW(static_cast<void>(run_panel_trial(world.generator(),
                                                 world.cadt(), panel, 0, rng)),
               std::invalid_argument);
}

TEST(PanelAnalysis, HomogeneousPanelShowsNoOverdispersion) {
  const auto world = reference_feature_world();
  stats::Rng rng(5);
  const auto panel = ReaderPanel::sample(base_config(), 10, 0.0, rng);
  const auto records =
      run_panel_trial(world.generator(), world.cadt(), panel, 30000, rng);
  const auto analysis = analyse_panel(records, panel.size());
  EXPECT_LT(analysis.fit.rho(), 0.005);
  EXPECT_GT(analysis.fit.mean(), 0.05);
  EXPECT_LT(analysis.fit.mean(), 0.4);
}

TEST(PanelAnalysis, HeterogeneousPanelShowsOverdispersionAndRange) {
  const auto world = reference_feature_world();
  stats::Rng rng(6);
  const auto panel = ReaderPanel::sample(base_config(), 10, 0.6, rng);
  const auto records =
      run_panel_trial(world.generator(), world.cadt(), panel, 30000, rng);
  const auto analysis = analyse_panel(records, panel.size());
  EXPECT_GT(analysis.fit.rho(), 0.001);
  EXPECT_GT(analysis.highest_rate - analysis.lowest_rate, 0.03);
  ASSERT_EQ(analysis.failure_rates.size(), 10u);
}

TEST(PanelAnalysis, ValidatesInput) {
  EXPECT_THROW(static_cast<void>(analyse_panel({}, 0)),
               std::invalid_argument);
  std::vector<PanelRecord> records(1);
  records[0].reader_index = 3;
  EXPECT_THROW(static_cast<void>(analyse_panel(records, 2)),
               std::invalid_argument);
  // Reader 1 saw no cases.
  std::vector<PanelRecord> lopsided(5);
  EXPECT_THROW(static_cast<void>(analyse_panel(lopsided, 2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::sim
