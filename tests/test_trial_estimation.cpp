// Integration tests: TabularWorld trials + estimation recover the paper's
// parameters within their confidence intervals (the Table-1 pipeline).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/paper_example.hpp"
#include "sim/estimation.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"

namespace hmdiv::sim {
namespace {

TrialData paper_trial(std::uint64_t cases, std::uint64_t seed) {
  TabularWorld world(core::paper::example_model(),
                     core::paper::trial_profile());
  TrialRunner runner(world, cases);
  stats::Rng rng(seed);
  return runner.run(rng);
}

TEST(TrialRunner, ValidatesCaseCount) {
  TabularWorld world(core::paper::example_model(),
                     core::paper::trial_profile());
  EXPECT_THROW(TrialRunner(world, 0), std::invalid_argument);
}

TEST(TrialRunner, RecordsHaveConsistentShape) {
  const auto data = paper_trial(5000, 1);
  EXPECT_EQ(data.records.size(), 5000u);
  EXPECT_EQ(data.class_names.size(), 2u);
  const auto histogram = data.class_histogram();
  EXPECT_EQ(histogram[0] + histogram[1], 5000u);
  // 80/20 split within sampling noise.
  EXPECT_NEAR(static_cast<double>(histogram[0]) / 5000.0, 0.8, 0.03);
}

TEST(TrialRunner, ObservedRatesTrackTheModel) {
  const auto data = paper_trial(40000, 2);
  const auto model = core::paper::example_model();
  const auto profile = core::paper::trial_profile();
  EXPECT_NEAR(data.observed_failure_rate(),
              model.system_failure_probability(profile), 0.01);
  EXPECT_NEAR(data.observed_machine_failure_rate(),
              model.machine_failure_probability(profile), 0.01);
}

TEST(Estimation, RecoversParametersWithinIntervals) {
  const auto data = paper_trial(20000, 3);
  // Six simultaneous 95% intervals would miss ~26% of the time; use 99.9%
  // so a correct implementation passes deterministically for this seed.
  const auto result = estimate_sequential_model(data, 0.999);
  const auto truth = core::paper::example_model();
  ASSERT_EQ(result.classes.size(), 2u);
  for (std::size_t x = 0; x < 2; ++x) {
    const auto& e = result.classes[x];
    const auto& t = truth.parameters(x);
    EXPECT_TRUE(e.machine_interval.contains(t.p_machine_fails)) << x;
    EXPECT_TRUE(e.human_given_failure_interval.contains(
        t.p_human_fails_given_machine_fails))
        << x;
    EXPECT_TRUE(e.human_given_success_interval.contains(
        t.p_human_fails_given_machine_succeeds))
        << x;
    EXPECT_NEAR(e.p_machine_fails, t.p_machine_fails, 0.02) << x;
    EXPECT_NEAR(e.importance_index(), truth.importance_index(x), 0.08) << x;
  }
}

TEST(Estimation, FittedModelPredictsFieldFailure) {
  // The full Section-5 workflow: estimate under the trial profile, predict
  // under the field profile, compare with the paper's 0.189.
  const auto data = paper_trial(60000, 4);
  const auto fitted = estimate_sequential_model(data).fitted_model();
  const double predicted =
      fitted.system_failure_probability(core::paper::field_profile());
  EXPECT_NEAR(predicted, 0.189, 0.01);
}

TEST(Estimation, EmpiricalProfileMatchesSampling) {
  const auto data = paper_trial(30000, 5);
  const auto result = estimate_sequential_model(data);
  EXPECT_NEAR(result.empirical_profile[0], 0.8, 0.02);
  EXPECT_NEAR(result.empirical_profile[1], 0.2, 0.02);
}

TEST(Estimation, CountsComposeWithPosteriorSampler) {
  const auto data = paper_trial(20000, 6);
  const auto result = estimate_sequential_model(data);
  core::PosteriorModelSampler sampler(result.class_names, result.counts());
  stats::Rng rng(7);
  const auto prediction =
      sampler.predict(core::paper::field_profile(), rng, 2000);
  EXPECT_LT(prediction.lower, 0.189 + 0.02);
  EXPECT_GT(prediction.upper, 0.189 - 0.02);
}

TEST(Estimation, DetectsHumanMachineAssociation) {
  // In the paper model PHf|Mf != PHf|Ms for the difficult class (0.9 vs
  // 0.4): the 2x2 chi-square must flag association with plenty of data.
  const auto data = paper_trial(30000, 8);
  const auto tests = association_by_class(data);
  ASSERT_EQ(tests.size(), 2u);
  EXPECT_LT(tests[1].p_value, 1e-6);  // difficult: strong dependence
}

TEST(Estimation, RejectsDegenerateInput) {
  TrialData empty;
  EXPECT_THROW(static_cast<void>(estimate_sequential_model(empty)),
               std::invalid_argument);
  TrialData missing_class;
  missing_class.class_names = {"a", "b"};
  missing_class.records.push_back(CaseRecord{0, false, false});
  EXPECT_THROW(static_cast<void>(estimate_sequential_model(missing_class)),
               std::invalid_argument);
  TrialData out_of_range;
  out_of_range.class_names = {"a"};
  out_of_range.records.push_back(CaseRecord{3, false, false});
  EXPECT_THROW(static_cast<void>(estimate_sequential_model(out_of_range)),
               std::invalid_argument);
}

TEST(Estimation, SmallTrialsGiveWideIntervals) {
  const auto small = estimate_sequential_model(paper_trial(300, 9));
  const auto large = estimate_sequential_model(paper_trial(30000, 9));
  EXPECT_GT(small.classes[1].machine_interval.width(),
            large.classes[1].machine_interval.width());
}

}  // namespace
}  // namespace hmdiv::sim
