// Shared access to the program-wide heap-allocation counter.
//
// The counting global operator new/delete replacements live in
// test_sweep_engine.cpp — replacement of the global allocation functions
// must happen exactly once per binary — but every TU linked into
// hmdiv_tests observes them. Any test that asserts a zero-allocation
// contract (sweep engine, batched uncertainty engine, bootstrap) reads the
// counter through this header instead of redefining its own.
#pragma once

#include <cstdint>

namespace hmdiv::test {

/// Number of global operator new calls since program start (relaxed
/// atomic read; exact in single-threaded sections, monotone everywhere).
[[nodiscard]] std::uint64_t allocation_count();

}  // namespace hmdiv::test
