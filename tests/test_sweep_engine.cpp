// Tests for the analytical sweep engine (core/tradeoff.hpp batch kernels,
// sweep cache, and the zero-allocation contract on exec workspaces).
//
// This TU replaces the global operator new/delete with counting versions so
// the steady-state "no heap allocation" contract of sweep_into and
// minimise_cost is asserted, not just claimed. The replacement is
// program-wide (it affects every test in the binary) but only adds one
// relaxed atomic increment per allocation; other TUs read the counter
// through tests/alloc_count.hpp.
#include "core/tradeoff.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "alloc_count.hpp"
#include "exec/config.hpp"
#include "exec/parallel.hpp"
#include "exec/workspace.hpp"
#include "obs/obs.hpp"

// GCC inlines the counting operator new (malloc-based) and operator delete
// (free-based) into use sites in this TU and then warns that free() is
// paired with a non-malloc allocation function; the pairing is consistent
// by construction here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hmdiv::test {

std::uint64_t allocation_count() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

}  // namespace hmdiv::test

namespace hmdiv::core {
namespace {

using hmdiv::test::allocation_count;

/// Deterministically grows the thread-local arena of every thread that can
/// participate in a `threads`-wide parallel region. Work-claiming pools
/// give no guarantee that a plain warm-up run touches every worker — a
/// helper that sat out the warm-up would grow its arena mid-measurement.
/// A spin barrier forces the chunks onto `threads` distinct threads: a
/// thread stuck in the barrier cannot claim a second chunk. The deadline
/// guards the (not expected here) inline-fallback path, where one thread
/// runs all chunks and the barrier could never fill.
void warm_all_workers(unsigned threads, std::size_t bytes) {
  std::atomic<unsigned> started{0};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  exec::parallel_for_chunks(
      threads, /*grain=*/1,
      [&](std::size_t, std::size_t, std::size_t) {
        exec::Workspace& ws = exec::thread_workspace();
        const exec::Workspace::Scope scope(ws);
        const std::span<std::byte> scratch = ws.alloc<std::byte>(bytes);
        scratch[bytes - 1] = std::byte{1};
        started.fetch_add(1, std::memory_order_acq_rel);
        while (started.load(std::memory_order_acquire) < threads &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
      },
      exec::Config{threads});
}

TradeoffAnalyzer reference_analyzer(double prevalence = 0.008) {
  BinormalMachine machine;
  machine.cancer_class_means = {2.2, 1.4, 3.0};
  machine.normal_class_means = {-0.3, 0.4};
  DemandProfile cancers({"typical", "subtle", "obvious"}, {0.5, 0.3, 0.2});
  std::vector<HumanFnResponse> fn(3);
  fn[0] = {0.02, 0.3};
  fn[1] = {0.1, 0.5};
  fn[2] = {0.01, 0.15};
  DemandProfile normals({"clear", "confusing"}, {0.8, 0.2});
  std::vector<HumanFpResponse> fp(2);
  fp[0] = {0.08, 0.02};
  fp[1] = {0.25, 0.1};
  return TradeoffAnalyzer(std::move(machine), std::move(cancers),
                          std::move(fn), std::move(normals), std::move(fp),
                          prevalence);
}

std::vector<double> make_grid(std::size_t steps, double lo, double hi) {
  std::vector<double> grid(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    grid[i] = lo + (hi - lo) * static_cast<double>(i) /
                       static_cast<double>(steps - 1);
  }
  return grid;
}

bool points_bitwise_equal(const SystemOperatingPoint& a,
                          const SystemOperatingPoint& b) {
  return std::memcmp(&a, &b, sizeof(SystemOperatingPoint)) == 0;
}

TEST(SweepEngine, EvaluateBatchMatchesScalarBitwise) {
  const auto analyzer = reference_analyzer();
  // Ascending (the sweep-grid shape), descending, and unsorted inputs all
  // take different Φ paths internally and must all reproduce the scalar
  // reference bit-for-bit.
  const std::vector<double> ascending = make_grid(10'000, -6.0, 6.0);
  const std::vector<double> descending(ascending.rbegin(), ascending.rend());
  std::vector<double> shuffled = ascending;
  for (std::size_t i = 1; i < shuffled.size(); i += 2) {
    std::swap(shuffled[i - 1], shuffled[i]);
  }
  for (const auto& grid : {ascending, descending, shuffled}) {
    std::vector<SystemOperatingPoint> batch(grid.size());
    analyzer.evaluate_batch(grid, batch);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const SystemOperatingPoint scalar = analyzer.evaluate(grid[i]);
      ASSERT_TRUE(points_bitwise_equal(batch[i], scalar))
          << "threshold " << grid[i];
    }
  }
}

TEST(SweepEngine, EvaluateBatchRejectsSizeMismatch) {
  const auto analyzer = reference_analyzer();
  const std::vector<double> grid = {0.0, 1.0};
  std::vector<SystemOperatingPoint> out(3);
  EXPECT_THROW(analyzer.evaluate_batch(grid, out), std::invalid_argument);
}

TEST(SweepEngine, SweepBitIdenticalAcrossThreadCounts) {
  const auto analyzer = reference_analyzer();
  const std::vector<double> grid = make_grid(10'000, -4.0, 4.0);
  const auto serial = analyzer.sweep(grid, exec::Config{1});
  const auto parallel = analyzer.sweep(grid, exec::Config{4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(points_bitwise_equal(serial[i], parallel[i])) << i;
  }
}

TEST(SweepEngine, MinimiseCostBitIdenticalAcrossThreadCounts) {
  const auto analyzer = reference_analyzer();
  const auto serial =
      analyzer.minimise_cost(25.0, 1.0, -3.0, 3.0, 10'000, exec::Config{1});
  const auto parallel =
      analyzer.minimise_cost(25.0, 1.0, -3.0, 3.0, 10'000, exec::Config{4});
  EXPECT_TRUE(points_bitwise_equal(serial, parallel));
}

TEST(SweepEngine, MinimiseCostPicksEarliestGridPointOnFlatPlateau) {
  const auto analyzer = reference_analyzer();
  // Grid entirely inside the Φ flush region: every operating point (and so
  // every cost) is identical across the whole grid. 1500 steps span three
  // 512-point chunks, so the plateau crosses chunk boundaries; the earliest
  // grid point must win regardless of how chunks are scheduled.
  for (const unsigned threads : {1u, 4u}) {
    const auto point = analyzer.minimise_cost(25.0, 1.0, 30.0, 40.0, 1500,
                                              exec::Config{threads});
    EXPECT_EQ(point.threshold, 30.0) << threads << " threads";
  }
  // Zero costs make every grid point cost exactly 0 — a plateau across the
  // full range; again the first grid point must be returned.
  for (const unsigned threads : {1u, 4u}) {
    const auto point = analyzer.minimise_cost(0.0, 0.0, -2.0, 2.0, 1500,
                                              exec::Config{threads});
    EXPECT_EQ(point.threshold, -2.0) << threads << " threads";
  }
}

TEST(SweepEngine, SweepIntoIsAllocationFreeAfterWarmup) {
  const auto analyzer = reference_analyzer();
  const std::vector<double> grid = make_grid(10'000, -4.0, 4.0);
  std::vector<SystemOperatingPoint> out(grid.size());
  // Serial: deterministic — one warm-up run grows the caller's arena, after
  // which the steady state must not touch the heap at all.
  analyzer.sweep_into(grid, out, exec::Config{1});
  const std::uint64_t before = allocation_count();
  analyzer.sweep_into(grid, out, exec::Config{1});
  const std::uint64_t delta = allocation_count() - before;
  EXPECT_EQ(delta, 0u);
}

TEST(SweepEngine, ParallelSweepIsAllocationFreeAfterWarmup) {
  const auto analyzer = reference_analyzer();
  const std::vector<double> grid = make_grid(10'000, -4.0, 4.0);
  std::vector<SystemOperatingPoint> out(grid.size());
  // Deterministic per-worker arena warm-up, then one run to settle
  // everything else (pool start-up, lazy statics).
  warm_all_workers(4, std::size_t{1} << 20);
  analyzer.sweep_into(grid, out, exec::Config{4});
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 4; ++i) {
    analyzer.sweep_into(grid, out, exec::Config{4});
  }
  const std::uint64_t delta = allocation_count() - before;
  EXPECT_EQ(delta, 0u);
}

TEST(SweepEngine, MinimiseCostIsAllocationFreeAfterWarmup) {
  const auto analyzer = reference_analyzer();
  static_cast<void>(
      analyzer.minimise_cost(25.0, 1.0, -3.0, 3.0, 10'000, exec::Config{1}));
  const std::uint64_t before = allocation_count();
  static_cast<void>(
      analyzer.minimise_cost(25.0, 1.0, -3.0, 3.0, 10'000, exec::Config{1}));
  const std::uint64_t delta = allocation_count() - before;
  EXPECT_EQ(delta, 0u);
}

TEST(SweepEngine, SweepCacheServesRepeatedGrids) {
  const auto analyzer = reference_analyzer();
  analyzer.set_sweep_cache_capacity(2);
  const std::vector<double> grid = make_grid(512, -2.0, 2.0);

  obs::set_enabled(true);
  obs::Registry::global().reset();
  const auto first = analyzer.sweep(grid, exec::Config{1});
  const auto second = analyzer.sweep(grid, exec::Config{1});
  obs::set_enabled(false);

  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(points_bitwise_equal(first[i], second[i])) << i;
  }
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& c : obs::registry_snapshot().counters) {
    if (c.name == "core.sweep.cache_hit") hits = c.value;
    if (c.name == "core.sweep.cache_miss") misses = c.value;
  }
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);
}

TEST(SweepEngine, SweepCacheEvictsOldestFirst) {
  const auto analyzer = reference_analyzer();
  analyzer.set_sweep_cache_capacity(1);
  const std::vector<double> first = make_grid(128, -2.0, 2.0);
  const std::vector<double> second = make_grid(128, -1.0, 1.0);

  obs::set_enabled(true);
  obs::Registry::global().reset();
  static_cast<void>(analyzer.sweep(first, exec::Config{1}));   // miss, cached
  static_cast<void>(analyzer.sweep(first, exec::Config{1}));   // hit
  static_cast<void>(analyzer.sweep(second, exec::Config{1}));  // miss, evicts
  static_cast<void>(analyzer.sweep(first, exec::Config{1}));   // miss again
  obs::set_enabled(false);

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& c : obs::registry_snapshot().counters) {
    if (c.name == "core.sweep.cache_hit") hits = c.value;
    if (c.name == "core.sweep.cache_miss") misses = c.value;
  }
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 3u);
}

TEST(SweepEngine, DisabledCacheRecomputes) {
  const auto analyzer = reference_analyzer();  // capacity 0 by default
  const std::vector<double> grid = make_grid(64, -1.0, 1.0);
  obs::set_enabled(true);
  obs::Registry::global().reset();
  static_cast<void>(analyzer.sweep(grid, exec::Config{1}));
  static_cast<void>(analyzer.sweep(grid, exec::Config{1}));
  obs::set_enabled(false);
  for (const auto& c : obs::registry_snapshot().counters) {
    if (c.name == "core.sweep.cache_hit" ||
        c.name == "core.sweep.cache_miss") {
      EXPECT_EQ(c.value, 0u) << c.name;
    }
  }
}

}  // namespace
}  // namespace hmdiv::core
