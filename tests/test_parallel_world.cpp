// Unit + integration tests for sim/parallel_world.hpp (Section 3's
// procedure-1 world and the validity conditions of Eqs. 1–3).
#include "sim/parallel_world.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/feature_world.hpp"

namespace hmdiv::sim {
namespace {

core::DemandProfile profile() {
  return core::DemandProfile({"easy", "difficult"}, {0.8, 0.2});
}

ParallelProcedureWorld make_world(double attention, double scale) {
  const auto base = reference_feature_world();
  return ParallelProcedureWorld(base.generator().with_profile(profile()),
                                base.cadt(), base.reader(), attention, scale);
}

TEST(ParallelWorld, ValidatesConstruction) {
  const auto base = reference_feature_world();
  EXPECT_THROW(ParallelProcedureWorld(base.generator(), base.cadt(),
                                      base.reader(), 1.5, 1.0),
               std::invalid_argument);
  EXPECT_THROW(ParallelProcedureWorld(base.generator(), base.cadt(),
                                      base.reader(), 1.0, -0.5),
               std::invalid_argument);
}

TEST(ParallelWorld, RecordInvariantsHold) {
  auto world = make_world(1.0, 1.0);
  stats::Rng rng(1);
  for (const auto& r : world.run(20000, rng)) {
    // Misclassification implies detection.
    if (r.misclassified) {
      EXPECT_TRUE(r.detected);
    }
    // System failure iff not detected or misclassified.
    EXPECT_EQ(r.system_failed, !r.detected || r.misclassified);
    // Under full attention, a prompted case is always detected.
    if (!r.machine_failed) {
      EXPECT_TRUE(r.detected);
    }
  }
}

TEST(ParallelWorld, UnaidedDetectionIsPromptBlind) {
  // pHmiss estimated from the instrumented records must not depend on the
  // machine's behaviour: compare across two very different CADTs.
  const auto base = reference_feature_world();
  ParallelProcedureWorld eager(base.generator().with_profile(profile()),
                               base.cadt().with_threshold_shift(-2.0),
                               base.reader());
  ParallelProcedureWorld strict(base.generator().with_profile(profile()),
                                base.cadt().with_threshold_shift(2.0),
                                base.reader());
  stats::Rng rng1(2), rng2(2);
  const auto e1 = estimate_parallel_model(eager.run(60000, rng1),
                                          profile().class_names());
  const auto e2 = estimate_parallel_model(strict.run(60000, rng2),
                                          profile().class_names());
  for (std::size_t x = 0; x < 2; ++x) {
    EXPECT_NEAR(e1.classes[x].p_human_misses, e2.classes[x].p_human_misses,
                0.01)
        << x;
    // The machine-miss estimates, by contrast, differ hugely.
  }
  EXPECT_GT(e2.classes[0].p_machine_misses,
            e1.classes[0].p_machine_misses + 0.2);
}

TEST(ParallelWorld, IdealRegimeMakesEq1Exact) {
  auto world = make_world(1.0, 0.0);
  stats::Rng gt_rng(3);
  const auto truth = world.ground_truth(gt_rng, 200000);
  stats::Rng ex_rng(3);
  const double exact = world.exact_system_failure(ex_rng, 200000);
  EXPECT_NEAR(truth.system_failure_probability(profile()), exact, 1e-3);

  stats::Rng sim_rng(4);
  const auto estimate = estimate_parallel_model(world.run(200000, sim_rng),
                                                profile().class_names());
  EXPECT_NEAR(estimate.fitted_model().system_failure_probability(profile()),
              estimate.observed_system_failure, 0.004);
}

TEST(ParallelWorld, InattentionMakesEq1Optimistic) {
  auto world = make_world(0.6, 0.0);
  stats::Rng gt_rng(5);
  const auto truth = world.ground_truth(gt_rng, 200000);
  stats::Rng ex_rng(5);
  const double exact = world.exact_system_failure(ex_rng, 200000);
  EXPECT_LT(truth.system_failure_probability(profile()), exact - 0.01);
}

TEST(ParallelWorld, HeterogeneityMakesEq1Optimistic) {
  auto world = make_world(1.0, 1.0);
  stats::Rng gt_rng(6);
  const auto truth = world.ground_truth(gt_rng, 300000);
  stats::Rng ex_rng(6);
  const double exact = world.exact_system_failure(ex_rng, 300000);
  EXPECT_LT(truth.system_failure_probability(profile()), exact - 0.002);
}

TEST(ParallelWorld, EstimatesConvergeToGroundTruth) {
  auto world = make_world(1.0, 1.0);
  stats::Rng gt_rng(7);
  const auto truth = world.ground_truth(gt_rng, 300000);
  stats::Rng sim_rng(8);
  const auto estimate = estimate_parallel_model(world.run(200000, sim_rng),
                                                profile().class_names());
  for (std::size_t x = 0; x < 2; ++x) {
    EXPECT_NEAR(estimate.classes[x].p_machine_misses,
                truth.parameters(x).p_machine_misses, 0.01)
        << x;
    EXPECT_NEAR(estimate.classes[x].p_human_misses,
                truth.parameters(x).p_human_misses, 0.01)
        << x;
    EXPECT_NEAR(estimate.classes[x].p_human_misclassifies,
                truth.parameters(x).p_human_misclassifies, 0.01)
        << x;
  }
}

TEST(ParallelWorld, EstimatorValidatesInput) {
  EXPECT_THROW(static_cast<void>(estimate_parallel_model({}, {})),
               std::invalid_argument);
  std::vector<ParallelProcedureRecord> bad(1);
  bad[0].class_index = 9;
  EXPECT_THROW(static_cast<void>(
                   estimate_parallel_model(bad, {"a", "b"})),
               std::invalid_argument);
  // A class with cases but zero detections: pHmisclass unidentifiable.
  std::vector<ParallelProcedureRecord> none_detected(4);
  for (auto& r : none_detected) {
    r.class_index = 0;
    r.detected = false;
    r.system_failed = true;
  }
  EXPECT_THROW(static_cast<void>(
                   estimate_parallel_model(none_detected, {"a"})),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::sim
