// Tests for the multi-host cluster engine (DESIGN.md §15): the shared
// host:port parse, the obs snapshot delta the workers ship, the worker-
// side ShardSession state machine, the ClusterRunner coordinator against
// real spawned hmdiv_serve daemons (bit-identity for every clustered
// workload at several worker × shard compositions), transport-fault
// reassignment (connection reset, slow drain past the task deadline, dead
// workers), and the serve metrics `workers` array.
//
// Daemon-backed tests spawn the real hmdiv_serve binary (HMDIV_SERVE_BIN,
// exported by the test harness) on loopback ephemeral ports; they
// self-skip under ThreadSanitizer (fork/exec of a threaded parent is
// outside TSan's model) and when the binary is absent. The protocol and
// determinism pieces that stay in-process always run.
#include "exec/cluster.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "cli/parse_util.hpp"
#include "core/paper_example.hpp"
#include "core/tradeoff.hpp"
#include "core/tradeoff_shard.hpp"
#include "core/uncertainty.hpp"
#include "core/uncertainty_shard.hpp"
#include "exec/cluster_protocol.hpp"
#include "exec/config.hpp"
#include "exec/shard.hpp"
#include "exec/shard_protocol.hpp"
#include "obs/obs.hpp"
#include "serve/service.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"
#include "sim/trial_shard.hpp"
#include "stats/rng.hpp"

#if defined(__SANITIZE_THREAD__)
#define HMDIV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMDIV_TSAN 1
#endif
#endif
#ifndef HMDIV_TSAN
#define HMDIV_TSAN 0
#endif

namespace hmdiv {
namespace {

namespace wire = exec::wire;
using namespace std::chrono_literals;

// --- daemon harness -------------------------------------------------------

const char* serve_binary() {
  const char* binary = std::getenv("HMDIV_SERVE_BIN");
  return (binary != nullptr && *binary != '\0') ? binary : nullptr;
}

#define HMDIV_REQUIRE_DAEMONS()                                          \
  do {                                                                   \
    if (HMDIV_TSAN) {                                                    \
      GTEST_SKIP() << "fork/exec daemons are not TSan-instrumentable";   \
    }                                                                    \
    if (serve_binary() == nullptr) {                                     \
      GTEST_SKIP() << "HMDIV_SERVE_BIN not set";                         \
    }                                                                    \
  } while (0)

/// One spawned `hmdiv_serve --example` worker on an ephemeral loopback
/// port. `fault` (optional) becomes HMDIV_SHARD_FAULT in the child's
/// environment only, so serve-transport faults fire on exactly one worker.
class SpawnedDaemon {
 public:
  explicit SpawnedDaemon(const char* fault = nullptr) {
    int out_pipe[2];
    if (::pipe(out_pipe) != 0) return;
    pid_ = ::fork();
    if (pid_ < 0) {
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      return;
    }
    if (pid_ == 0) {
      if (fault != nullptr) ::setenv("HMDIV_SHARD_FAULT", fault, 1);
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      const char* binary = serve_binary();
      ::execl(binary, binary, "--example", "--port", "0", "--threads", "1",
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(out_pipe[1]);
    // Parse "listening on 127.0.0.1:<port>" from the daemon's stdout.
    std::string banner;
    char chunk[256];
    while (banner.find('\n') == std::string::npos) {
      const ssize_t got = ::read(out_pipe[0], chunk, sizeof chunk);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;
      banner.append(chunk, static_cast<std::size_t>(got));
    }
    ::close(out_pipe[0]);
    const std::size_t newline = banner.find('\n');
    const std::size_t colon =
        newline == std::string::npos ? std::string::npos
                                     : banner.rfind(':', newline);
    if (colon != std::string::npos) {
      port_ = std::atoi(banner.c_str() + colon + 1);
    }
  }

  ~SpawnedDaemon() { stop(); }
  SpawnedDaemon(const SpawnedDaemon&) = delete;
  SpawnedDaemon& operator=(const SpawnedDaemon&) = delete;

  void stop() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  [[nodiscard]] bool ok() const { return pid_ > 0 && port_ > 0; }
  [[nodiscard]] std::string address() const {
    return "127.0.0.1:" + std::to_string(port_);
  }

 private:
  pid_t pid_ = -1;
  int port_ = 0;
};

exec::ClusterOptions cluster_options(std::vector<std::string> workers,
                                     unsigned shards) {
  exec::ClusterOptions options;
  options.workers = std::move(workers);
  options.shards = shards;
  options.threads = 1;
  return options;
}

// --- reference fixtures (mirror tests/test_shard.cpp) ---------------------

core::TradeoffAnalyzer reference_analyzer() {
  core::BinormalMachine machine;
  machine.cancer_class_means = {2.0, 0.8};
  machine.normal_class_means = {-2.0, -0.5};
  core::DemandProfile cancers({"easy", "difficult"}, {0.9, 0.1});
  std::vector<core::HumanFnResponse> fn(2);
  fn[0] = {0.14, 0.18};
  fn[1] = {0.4, 0.9};
  core::DemandProfile normals({"typical", "complex"}, {0.85, 0.15});
  std::vector<core::HumanFpResponse> fp(2);
  fp[0] = {0.10, 0.02};
  fp[1] = {0.35, 0.12};
  return core::TradeoffAnalyzer(std::move(machine), std::move(cancers),
                                std::move(fn), std::move(normals),
                                std::move(fp), 0.01);
}

core::PosteriorModelSampler paper_sampler() {
  core::ClassCounts easy;
  easy.cases = 800;
  easy.machine_failures = 56;
  easy.human_failures_given_machine_failed = 28;
  easy.human_failures_given_machine_succeeded = 40;
  core::ClassCounts difficult;
  difficult.cases = 200;
  difficult.machine_failures = 82;
  difficult.human_failures_given_machine_failed = 74;
  difficult.human_failures_given_machine_succeeded = 30;
  return core::PosteriorModelSampler({"easy", "difficult"},
                                     {easy, difficult});
}

std::vector<double> reference_thresholds(std::size_t n) {
  std::vector<double> thresholds(n);
  for (std::size_t i = 0; i < n; ++i) {
    thresholds[i] = -4.0 + 8.0 * static_cast<double>(i) /
                               static_cast<double>(n - 1);
  }
  return thresholds;
}

void expect_points_equal(
    const std::vector<core::SystemOperatingPoint>& actual,
    const std::vector<core::SystemOperatingPoint>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(actual[i].threshold),
              std::bit_cast<std::uint64_t>(expected[i].threshold))
        << "point " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(actual[i].system_fn),
              std::bit_cast<std::uint64_t>(expected[i].system_fn))
        << "point " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(actual[i].system_fp),
              std::bit_cast<std::uint64_t>(expected[i].system_fp))
        << "point " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(actual[i].ppv),
              std::bit_cast<std::uint64_t>(expected[i].ppv))
        << "point " << i;
  }
}

// --- cli::parse_host_port -------------------------------------------------
// (The full rejection table lives in src/cli/CMakeLists.txt: every
// malformed spelling must exit 2 through the real CLIs. Here: accepts.)

TEST(ClusterParseHostPortTest, AcceptsPlainHostPort) {
  const cli::HostPort parsed =
      cli::parse_host_port("test", "--workers", "example.org:8080");
  EXPECT_EQ(parsed.host, "example.org");
  EXPECT_EQ(parsed.port, 8080);
}

TEST(ClusterParseHostPortTest, AcceptsBracketedIpv6) {
  const cli::HostPort parsed =
      cli::parse_host_port("test", "--workers", "[::1]:9000");
  EXPECT_EQ(parsed.host, "::1");
  EXPECT_EQ(parsed.port, 9000);
}

TEST(ClusterParseHostPortTest, AcceptsPortBounds) {
  EXPECT_EQ(cli::parse_host_port("test", "--bind", "0.0.0.0:0").port, 0);
  EXPECT_EQ(cli::parse_host_port("test", "--bind", "h:65535").port, 65535);
}

// --- obs::snapshot_delta --------------------------------------------------

TEST(ClusterSnapshotDeltaTest, CountersAndHistogramsSubtract) {
  obs::Snapshot before;
  before.counters.push_back({"a.count", 10});
  obs::HistogramSnapshot h;
  h.name = "a.ns";
  h.count = 4;
  h.sum = 400;
  h.min = 50;
  h.max = 200;
  h.buckets.assign(obs::Histogram::kBuckets, 0);
  h.buckets[6] = 4;
  before.histograms.push_back(h);

  obs::Snapshot after = before;
  after.counters[0].value = 17;
  after.histograms[0].count = 6;
  after.histograms[0].sum = 1000;
  after.histograms[0].min = 25;   // cumulative envelope widened
  after.histograms[0].max = 500;
  after.histograms[0].buckets[6] = 5;
  after.histograms[0].buckets[8] = 1;

  const obs::Snapshot delta = obs::snapshot_delta(before, after);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].name, "a.count");
  EXPECT_EQ(delta.counters[0].value, 7u);
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].count, 2u);
  EXPECT_EQ(delta.histograms[0].sum, 600u);
  // min/max carry the cumulative envelope (documented approximation).
  EXPECT_EQ(delta.histograms[0].min, 25u);
  EXPECT_EQ(delta.histograms[0].max, 500u);
  EXPECT_EQ(delta.histograms[0].buckets[6], 1u);
  EXPECT_EQ(delta.histograms[0].buckets[8], 1u);
}

TEST(ClusterSnapshotDeltaTest, UnchangedMetricsAreDropped) {
  obs::Snapshot before;
  before.counters.push_back({"same", 5});
  obs::Snapshot after = before;
  const obs::Snapshot delta = obs::snapshot_delta(before, after);
  EXPECT_TRUE(delta.empty());
}

TEST(ClusterSnapshotDeltaTest, NewMetricsPassThroughWhole) {
  obs::Snapshot before;
  obs::Snapshot after;
  after.counters.push_back({"fresh", 3});
  const obs::Snapshot delta = obs::snapshot_delta(before, after);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].value, 3u);
}

// --- worker-side ShardSession ---------------------------------------------

std::vector<std::uint8_t> echo_handler(const wire::ShardTask& task) {
  wire::Writer w;
  w.u32(task.shard_index);
  w.u32(task.shard_count);
  w.bytes(task.blob);
  return w.take();
}

const exec::ShardWorkloadRegistration kEchoRegistration{"cluster.echo",
                                                        &echo_handler};

std::vector<std::uint8_t> task_frame(std::string_view workload,
                                     std::uint32_t shard, std::uint32_t count,
                                     bool obs_enabled = false) {
  wire::ShardTask task;
  task.workload = std::string(workload);
  task.shard_index = shard;
  task.shard_count = count;
  task.threads = 1;
  task.obs_enabled = obs_enabled;
  task.blob = {1, 2, 3};
  std::vector<std::uint8_t> out;
  wire::append_frame(out, wire::FrameType::task, wire::serialize_task(task));
  return out;
}

std::vector<wire::Frame> parse_reply(std::span<const std::uint8_t> bytes) {
  wire::FrameParser parser;
  parser.feed(bytes);
  std::vector<wire::Frame> frames;
  while (auto frame = parser.next()) frames.push_back(std::move(*frame));
  EXPECT_TRUE(parser.idle());
  return frames;
}

TEST(ClusterSessionTest, EchoTaskRoundTrips) {
  exec::ShardSession session;
  const auto replies = session.consume(task_frame("cluster.echo", 2, 5));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].shard_index, 2u);
  EXPECT_FALSE(replies[0].close);
  const auto frames = parse_reply(replies[0].bytes);
  // result + done (no obs frame when obs_enabled is false); the done
  // frame's id echoes the task's span-start shard index so a pipelining
  // coordinator can match it against its in-flight FIFO.
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, wire::FrameType::result);
  wire::Reader r(frames[0].payload);
  EXPECT_EQ(r.u32(), 2u);
  EXPECT_EQ(r.u32(), 5u);
  EXPECT_EQ(frames[1].type, wire::FrameType::done);
  EXPECT_EQ(wire::parse_done(frames[1].payload), 2u);
}

TEST(ClusterSessionTest, ObsEnabledTaskShipsDeltaFrame) {
  const bool was_enabled = obs::enabled();
  exec::ShardSession session;
  const auto replies =
      session.consume(task_frame("cluster.echo", 0, 1, /*obs_enabled=*/true));
  obs::set_enabled(was_enabled);
  ASSERT_EQ(replies.size(), 1u);
  const auto frames = parse_reply(replies[0].bytes);
  ASSERT_EQ(frames.size(), 3u);  // result + obs + done
  EXPECT_EQ(frames[0].type, wire::FrameType::result);
  EXPECT_EQ(frames[1].type, wire::FrameType::obs);
  EXPECT_EQ(frames[2].type, wire::FrameType::done);
  // The delta covers exactly this task's execution, so the per-task
  // counter must be 1 — not the daemon's uptime total.
  const obs::Snapshot delta = obs::parse_snapshot(frames[1].payload);
  bool found = false;
  for (const auto& counter : delta.counters) {
    if (counter.name == "serve.shard.tasks") {
      EXPECT_EQ(counter.value, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ClusterSessionTest, UnknownWorkloadYieldsErrorFrame) {
  exec::ShardSession session;
  const auto replies = session.consume(task_frame("no.such.workload", 0, 1));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].close);
  const auto frames = parse_reply(replies[0].bytes);
  // An error frame is terminal for the task: no done frame follows it
  // (done marks successful completion only).
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::error);
}

TEST(ClusterSessionTest, GarbageBytesKillTheSession) {
  exec::ShardSession session;
  const std::uint8_t garbage[] = {'N', 'O', 'P', 'E', 0, 0, 0, 0,
                                  1,   2,   3,   4,   5, 6, 7, 8};
  const auto replies = session.consume(garbage);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].close);
  const auto frames = parse_reply(replies[0].bytes);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::error);
  // Dead session ignores further (even well-formed) bytes.
  EXPECT_TRUE(session.consume(task_frame("cluster.echo", 0, 1)).empty());
}

TEST(ClusterSessionTest, SplitTaskFrameCompletesOnSecondChunk) {
  exec::ShardSession session;
  const auto frame = task_frame("cluster.echo", 1, 3);
  const std::size_t half = frame.size() / 2;
  EXPECT_TRUE(
      session.consume(std::span(frame.data(), half)).empty());
  const auto replies =
      session.consume(std::span(frame.data() + half, frame.size() - half));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].shard_index, 1u);
}

TEST(ClusterSessionTest, PipelinedTasksReplyInOrderAtEveryChunking) {
  // Three back-to-back task frames — the wire image of a window-3
  // coordinator — fed at every fixed chunk size: the session must yield
  // the same three replies in arrival order, each closed by the matching
  // done frame, no matter where the read boundaries fall.
  std::vector<std::uint8_t> stream;
  for (const std::uint32_t s : {0u, 1u, 2u}) {
    const auto frame = task_frame("cluster.echo", s, 3);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    exec::ShardSession session;
    std::vector<exec::ShardSession::Reply> replies;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      for (auto& reply :
           session.consume(std::span(stream.data() + off, n))) {
        replies.push_back(std::move(reply));
      }
    }
    ASSERT_EQ(replies.size(), 3u) << "chunk size " << chunk;
    for (std::uint32_t s = 0; s < 3; ++s) {
      EXPECT_EQ(replies[s].shard_index, s) << "chunk size " << chunk;
      EXPECT_FALSE(replies[s].close);
      const auto frames = parse_reply(replies[s].bytes);
      ASSERT_EQ(frames.size(), 2u) << "chunk size " << chunk;
      EXPECT_EQ(frames[0].type, wire::FrameType::result);
      EXPECT_EQ(frames[1].type, wire::FrameType::done);
      EXPECT_EQ(wire::parse_done(frames[1].payload), s);
    }
  }
}

TEST(ClusterSessionTest, CachedBlobTasksReuseTheConnectionBlob) {
  exec::ShardSession session;
  // First task ships the blob inline (task_frame uses {1, 2, 3}) and
  // populates the session cache ...
  ASSERT_EQ(session.consume(task_frame("cluster.echo", 0, 4)).size(), 1u);
  // ... so a follow-up task can reference it instead of re-shipping.
  wire::ShardTask cached;
  cached.workload = "cluster.echo";
  cached.shard_index = 1;
  cached.shard_count = 4;
  cached.threads = 1;
  cached.blob_cached = true;
  std::vector<std::uint8_t> frame;
  wire::append_frame(frame, wire::FrameType::task,
                     wire::serialize_task(cached));
  const auto replies = session.consume(frame);
  ASSERT_EQ(replies.size(), 1u);
  const auto frames = parse_reply(replies[0].bytes);
  ASSERT_EQ(frames.size(), 2u);
  ASSERT_EQ(frames[0].type, wire::FrameType::result);
  wire::Reader r(frames[0].payload);
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_EQ(r.u32(), 4u);
  // The echo handler appends the blob it saw: the cached {1, 2, 3}.
  const auto blob = r.take(3);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(blob[0], 1u);
  EXPECT_EQ(blob[1], 2u);
  EXPECT_EQ(blob[2], 3u);
}

TEST(ClusterSessionTest, CachedTaskWithoutPriorBlobIsAnError) {
  exec::ShardSession session;
  wire::ShardTask cached;
  cached.workload = "cluster.echo";
  cached.shard_index = 0;
  cached.shard_count = 1;
  cached.blob_cached = true;
  std::vector<std::uint8_t> frame;
  wire::append_frame(frame, wire::FrameType::task,
                     wire::serialize_task(cached));
  const auto replies = session.consume(frame);
  ASSERT_EQ(replies.size(), 1u);
  // A structured (deterministic) error, not a dead stream: the
  // coordinator aborts the run, other connections are unaffected.
  EXPECT_FALSE(replies[0].close);
  const auto frames = parse_reply(replies[0].bytes);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::error);
}

// --- ClusterRunner shard resolution (no sockets) --------------------------

TEST(ClusterRunnerTest, ResolvedShardsDefaultsToWorkerCount) {
  exec::ClusterRunner runner(
      cluster_options({"a:1", "b:1", "c:1"}, /*shards=*/0));
  EXPECT_EQ(runner.resolved_shards(), 3u);
  exec::ClusterRunner pinned(cluster_options({"a:1"}, /*shards=*/7));
  EXPECT_EQ(pinned.resolved_shards(), 7u);
}

// --- ClusterRunner against real daemons -----------------------------------

TEST(ClusterRunnerTest, TrialIsBitIdenticalAcrossWorkersAndShards) {
  HMDIV_REQUIRE_DAEMONS();
  SpawnedDaemon a;
  SpawnedDaemon b;
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  constexpr std::uint64_t kCases = 20'000;
  constexpr std::uint64_t kSeed = 20030625;
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  const sim::TrialData reference =
      sim::TrialRunner(world, kCases).run(kSeed, exec::Config{2});
  for (const unsigned shards : {2u, 5u}) {
    exec::ClusterRunner cluster(
        cluster_options({a.address(), b.address()}, shards));
    const sim::TrialData clustered =
        sim::run_trial_clustered(world, kCases, kSeed, cluster);
    ASSERT_EQ(clustered.records.size(), reference.records.size());
    for (std::size_t i = 0; i < reference.records.size(); ++i) {
      ASSERT_EQ(clustered.records[i].class_index,
                reference.records[i].class_index)
          << "shards " << shards << " case " << i;
      ASSERT_EQ(clustered.records[i].machine_failed,
                reference.records[i].machine_failed);
      ASSERT_EQ(clustered.records[i].human_failed,
                reference.records[i].human_failed);
    }
  }
}

TEST(ClusterRunnerTest, SweepAndMinimiseAreBitIdentical) {
  HMDIV_REQUIRE_DAEMONS();
  SpawnedDaemon a;
  SpawnedDaemon b;
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const std::vector<double> thresholds = reference_thresholds(513);
  const auto reference = analyzer.sweep(thresholds, exec::Config{2});
  const auto best_reference =
      analyzer.minimise_cost(500.0, 20.0, -4.0, 4.0, 999, exec::Config{2});

  exec::ClusterRunner cluster(
      cluster_options({a.address(), b.address()}, /*shards=*/3));
  expect_points_equal(core::sweep_clustered(analyzer, thresholds, cluster),
                      reference);
  const auto best =
      core::minimise_cost_clustered(analyzer, 500.0, 20.0, -4.0, 4.0, 999,
                                    cluster);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(best.threshold),
            std::bit_cast<std::uint64_t>(best_reference.threshold));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(best.system_fn),
            std::bit_cast<std::uint64_t>(best_reference.system_fn));

  // Flat plateau: the earliest-grid-point tie rule must survive the
  // network transport too.
  const auto tie =
      core::minimise_cost_clustered(analyzer, 0.0, 0.0, -4.0, 4.0, 999,
                                    cluster);
  EXPECT_EQ(tie.threshold, -4.0);

  // Both runs reused the same warm pool; nothing was retried.
  for (const auto& stats : cluster.worker_stats()) {
    EXPECT_EQ(stats.retries, 0u) << stats.address;
    EXPECT_GT(stats.tasks, 0u) << stats.address;
  }
}

TEST(ClusterRunnerTest, PosteriorDrawsAreBitIdenticalAndRngInLockstep) {
  HMDIV_REQUIRE_DAEMONS();
  SpawnedDaemon a;
  SpawnedDaemon b;
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const core::PosteriorModelSampler sampler = paper_sampler();
  const core::DemandProfile field = core::paper::field_profile();
  constexpr std::size_t kDraws = 1500;  // 3 chunks of 512, last one ragged

  std::vector<double> reference(kDraws);
  stats::Rng reference_rng(42);
  sampler.sample_failure_probabilities(field, reference_rng, reference,
                                       exec::Config{2});

  std::vector<double> clustered(kDraws);
  stats::Rng clustered_rng(42);
  exec::ClusterRunner cluster(
      cluster_options({a.address(), b.address()}, /*shards=*/3));
  core::sample_failure_probabilities_clustered(sampler, field, clustered_rng,
                                               clustered, cluster);
  for (std::size_t i = 0; i < kDraws; ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(clustered[i]),
              std::bit_cast<std::uint64_t>(reference[i]))
        << "draw " << i;
  }
  // Both paths consume exactly one step of the caller's rng.
  EXPECT_EQ(reference_rng.next_u64(), clustered_rng.next_u64());

  stats::Rng predict_rng(11);
  stats::Rng predict_reference_rng(11);
  const auto predicted = core::predict_clustered(sampler, field, predict_rng,
                                                 1024, 0.95, cluster);
  const auto predicted_reference = sampler.predict(
      field, predict_reference_rng, 1024, 0.95, exec::Config{2});
  EXPECT_EQ(predicted.mean, predicted_reference.mean);
  EXPECT_EQ(predicted.lower, predicted_reference.lower);
  EXPECT_EQ(predicted.upper, predicted_reference.upper);
}

TEST(ClusterRunnerTest, UnknownWorkloadAbortsWithClusterError) {
  HMDIV_REQUIRE_DAEMONS();
  SpawnedDaemon a;
  ASSERT_TRUE(a.ok());
  exec::ClusterRunner cluster(cluster_options({a.address()}, /*shards=*/2));
  const std::vector<std::uint8_t> blob{1, 2, 3};
  EXPECT_THROW((void)cluster.run("no.such.workload", blob),
               exec::ClusterError);
}

TEST(ClusterRunnerTest, MalformedBlobAbortsWithClusterError) {
  HMDIV_REQUIRE_DAEMONS();
  SpawnedDaemon a;
  ASSERT_TRUE(a.ok());
  exec::ClusterRunner cluster(cluster_options({a.address()}, /*shards=*/2));
  // A truncated core.sweep blob is a deterministic workload failure: no
  // reassignment can fix it, so the run must abort, not retry forever.
  const std::vector<std::uint8_t> garbage{9, 9, 9};
  EXPECT_THROW((void)cluster.run(std::string(core::kSweepShardWorkload),
                                 garbage),
               exec::ClusterError);
}

TEST(ClusterRunnerTest, AllWorkersDeadThrowsClusterError) {
  HMDIV_REQUIRE_DAEMONS();
  exec::ClusterOptions options =
      cluster_options({"127.0.0.1:1"}, /*shards=*/2);
  options.connect_timeout = 2s;
  exec::ClusterRunner cluster(std::move(options));
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  EXPECT_THROW((void)core::sweep_clustered(analyzer,
                                           reference_thresholds(16), cluster),
               exec::ClusterError);
}

TEST(ClusterRunnerTest, DeadWorkerFailsOverToHealthyOne) {
  HMDIV_REQUIRE_DAEMONS();
  SpawnedDaemon live;
  ASSERT_TRUE(live.ok());
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const std::vector<double> thresholds = reference_thresholds(257);
  const auto reference = analyzer.sweep(thresholds, exec::Config{2});

  // Worker 0 is a connection-refused address: its initial task must be
  // re-issued to the live worker and the run still completes bit-exact.
  exec::ClusterOptions options =
      cluster_options({"127.0.0.1:1", live.address()}, /*shards=*/3);
  options.connect_timeout = 2s;
  exec::ClusterRunner cluster(std::move(options));
  expect_points_equal(core::sweep_clustered(analyzer, thresholds, cluster),
                      reference);
  const auto stats = cluster.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  // A connect refusal happens before a task is ever issued, so it marks
  // the worker failed (last_error) without counting a retry — retries
  // tally tasks abandoned mid-flight (see the fault tests below).
  EXPECT_EQ(stats[0].tasks, 0u);
  EXPECT_FALSE(stats[0].last_error.empty());
  EXPECT_EQ(stats[1].tasks, 3u);
}

// --- injected transport faults --------------------------------------------

TEST(ClusterFaultTest, ConnectionResetReassignsBitIdentical) {
  HMDIV_REQUIRE_DAEMONS();
  // The faulty daemon RSTs the connection instead of shipping its first
  // reply, whichever task that is — '*' keeps the fault deterministic now
  // that concurrent startup makes the task → worker mapping timing-
  // dependent.
  SpawnedDaemon faulty("connreset:*");
  SpawnedDaemon clean;
  ASSERT_TRUE(faulty.ok());
  ASSERT_TRUE(clean.ok());
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const std::vector<double> thresholds = reference_thresholds(257);
  const auto reference = analyzer.sweep(thresholds, exec::Config{2});

  exec::ClusterRunner cluster(
      cluster_options({faulty.address(), clean.address()}, /*shards=*/4));
  expect_points_equal(core::sweep_clustered(analyzer, thresholds, cluster),
                      reference);
  const auto stats = cluster.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GE(stats[0].retries, 1u);
  EXPECT_FALSE(stats[0].last_error.empty());
  EXPECT_EQ(stats[1].tasks, 4u);  // the clean worker finished every shard
}

TEST(ClusterFaultTest, SlowDrainPastDeadlineReassignsBitIdentical) {
  HMDIV_REQUIRE_DAEMONS();
  // The faulty daemon ships half of every reply, then stalls for ~1.5 s —
  // far past the 500 ms task deadline, so the coordinator must drop it
  // mid-frame and re-issue its tasks to the clean worker.
  SpawnedDaemon faulty("slowdrain:*");
  SpawnedDaemon clean;
  ASSERT_TRUE(faulty.ok());
  ASSERT_TRUE(clean.ok());
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const std::vector<double> thresholds = reference_thresholds(129);
  const auto reference = analyzer.sweep(thresholds, exec::Config{2});

  exec::ClusterOptions options =
      cluster_options({faulty.address(), clean.address()}, /*shards=*/2);
  options.task_deadline = 500ms;
  exec::ClusterRunner cluster(std::move(options));
  expect_points_equal(core::sweep_clustered(analyzer, thresholds, cluster),
                      reference);
  const auto stats = cluster.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GE(stats[0].retries, 1u);
  EXPECT_EQ(stats[1].tasks, 2u);
}

// --- pipelined windows, adaptive sizing, delay faults, readmission --------

TEST(ClusterRunnerTest, WindowAndTaskSizingAreBitIdenticalAcrossDepths) {
  HMDIV_REQUIRE_DAEMONS();
  SpawnedDaemon a;
  SpawnedDaemon b;
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const std::vector<double> thresholds = reference_thresholds(513);
  const auto reference = analyzer.sweep(thresholds, exec::Config{2});

  constexpr std::uint64_t kCases = 20'000;
  constexpr std::uint64_t kSeed = 20030625;
  sim::TabularWorld world(core::paper::example_model(),
                          core::paper::trial_profile());
  const sim::TrialData trial_reference =
      sim::TrialRunner(world, kCases).run(kSeed, exec::Config{2});

  // Every window depth × shard-count composition — including shards=0,
  // where the run picks its own adaptive micro-shard count from the
  // items hint — must reproduce the in-process output bit for bit.
  for (const unsigned window : {1u, 2u, 4u}) {
    for (const unsigned shards : {0u, 7u}) {
      exec::ClusterOptions options =
          cluster_options({a.address(), b.address()}, shards);
      options.window = window;
      exec::ClusterRunner cluster(std::move(options));
      expect_points_equal(
          core::sweep_clustered(analyzer, thresholds, cluster), reference);
      const sim::TrialData trial =
          sim::run_trial_clustered(world, kCases, kSeed, cluster);
      ASSERT_EQ(trial.records.size(), trial_reference.records.size())
          << "window " << window << " shards " << shards;
      for (std::size_t i = 0; i < trial.records.size(); ++i) {
        ASSERT_EQ(trial.records[i].class_index,
                  trial_reference.records[i].class_index)
            << "window " << window << " shards " << shards << " case " << i;
        ASSERT_EQ(trial.records[i].machine_failed,
                  trial_reference.records[i].machine_failed);
        ASSERT_EQ(trial.records[i].human_failed,
                  trial_reference.records[i].human_failed);
      }
      for (const auto& stats : cluster.worker_stats()) {
        EXPECT_EQ(stats.retries, 0u) << stats.address;
        EXPECT_EQ(stats.window, std::max(1u, window)) << stats.address;
      }
    }
  }
}

TEST(ClusterFaultTest, DelayedRepliesStayBitIdentical) {
  HMDIV_REQUIRE_DAEMONS();
  // Injected per-reply latency (the WAN emulation the pipeline exists to
  // hide) must be invisible in the output: replies still arrive in FIFO
  // order per connection, just later.
  SpawnedDaemon delayed("delay:*:25");
  SpawnedDaemon clean;
  ASSERT_TRUE(delayed.ok());
  ASSERT_TRUE(clean.ok());
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const std::vector<double> thresholds = reference_thresholds(257);
  const auto reference = analyzer.sweep(thresholds, exec::Config{2});

  exec::ClusterOptions options =
      cluster_options({delayed.address(), clean.address()}, /*shards=*/0);
  options.window = 4;
  exec::ClusterRunner cluster(std::move(options));
  expect_points_equal(core::sweep_clustered(analyzer, thresholds, cluster),
                      reference);
  for (const auto& stats : cluster.worker_stats()) {
    EXPECT_EQ(stats.retries, 0u) << stats.address;  // late is not lost
  }
}

TEST(ClusterFaultTest, SidelinedWorkerIsReadmittedBitIdentical) {
  HMDIV_REQUIRE_DAEMONS();
  // Worker 0 RSTs every reply it ships, so it is sidelined on first
  // contact; worker 1 answers each reply ~20 ms late, keeping the run
  // alive past the readmission backoff. The probe must reconnect worker 0
  // (readmitted >= 1) and the output must stay bit-identical through
  // sideline, requeue, readmission, and the second sideline that follows.
  SpawnedDaemon faulty("connreset:*");
  SpawnedDaemon slow("delay:*:20");
  ASSERT_TRUE(faulty.ok());
  ASSERT_TRUE(slow.ok());
  const core::TradeoffAnalyzer analyzer = reference_analyzer();
  const std::vector<double> thresholds = reference_thresholds(2048);
  const auto reference = analyzer.sweep(thresholds, exec::Config{2});

  exec::ClusterOptions options =
      cluster_options({faulty.address(), slow.address()}, /*shards=*/0);
  options.window = 2;
  // Well under the run length: the slow worker needs several delayed
  // replies to drain the queue, so the probe fires while work remains.
  options.readmit_after = 30ms;
  exec::ClusterRunner cluster(std::move(options));
  expect_points_equal(core::sweep_clustered(analyzer, thresholds, cluster),
                      reference);
  const auto stats = cluster.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GE(stats[0].retries, 1u);
  EXPECT_GE(stats[0].readmitted, 1u);
  EXPECT_FALSE(stats[0].last_error.empty());
  EXPECT_GT(stats[1].tasks, 0u);
}

// --- serve metrics `workers` array ----------------------------------------

TEST(ClusterMetricsTest, WorkersArrayRendersInMetricsSnapshot) {
  exec::ClusterWorkerStats worker;
  worker.address = "10.0.0.1:9000";
  worker.tasks = 3;
  worker.bytes_out = 100;
  worker.bytes_in = 200;
  worker.retries = 1;
  worker.readmitted = 2;
  worker.inflight = 1;
  worker.window = 4;
  worker.task_size = 3;
  worker.last_error = "connection \"reset\"";
  exec::detail::set_cluster_worker_stats({worker});

  serve::Service service(core::paper::example_model(),
                         core::paper::trial_profile(),
                         core::paper::field_profile(), {});
  serve::RequestScratch scratch;
  std::string out;
  service.handle_line("{\"op\":\"metrics\",\"id\":1}", scratch, out);
  EXPECT_NE(out.find("\"workers\":[{\"address\":\"10.0.0.1:9000\""),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"tasks\":3"), std::string::npos);
  EXPECT_NE(out.find("\"retries\":1"), std::string::npos);
  EXPECT_NE(out.find("\"readmitted\":2"), std::string::npos);
  EXPECT_NE(out.find("\"inflight\":1"), std::string::npos);
  EXPECT_NE(out.find("\"window\":4"), std::string::npos);
  EXPECT_NE(out.find("\"task_size\":3"), std::string::npos);
  // last_error goes through the JSON escaper.
  EXPECT_NE(out.find("connection \\\"reset\\\""), std::string::npos) << out;

  exec::detail::set_cluster_worker_stats({});
  out.clear();
  service.handle_line("{\"op\":\"metrics\",\"id\":2}", scratch, out);
  EXPECT_NE(out.find("\"workers\":[]"), std::string::npos) << out;
}

}  // namespace
}  // namespace hmdiv
