// Unit tests for core/dual_model.hpp — both failure modes combined.
#include "core/dual_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/paper_example.hpp"

namespace hmdiv::core {
namespace {

TEST(DualModel, ValidatesConstruction) {
  const auto fn = paper::example_model();
  const auto fp = example_dual_model().fp_model();
  const auto fn_profile = paper::field_profile();
  const auto fp_profile = example_dual_model().fp_profile();
  EXPECT_THROW(DualModel(fn, fp_profile, fp, fp_profile, 0.01),
               std::invalid_argument);
  EXPECT_THROW(DualModel(fn, fn_profile, fp, fn_profile, 0.01),
               std::invalid_argument);
  EXPECT_THROW(DualModel(fn, fn_profile, fp, fp_profile, 0.0),
               std::invalid_argument);
  EXPECT_THROW(DualModel(fn, fn_profile, fp, fp_profile, 1.0),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(example_dual_model(1.5)),
               std::invalid_argument);
}

TEST(DualModel, FnSideMatchesPaperNumbers) {
  const auto dual = example_dual_model();
  const auto p = dual.performance();
  EXPECT_NEAR(p.false_negative_rate, 0.189, 5e-4);
  EXPECT_NEAR(p.sensitivity, 1.0 - 0.189, 5e-4);
}

TEST(DualModel, PerformanceIdentitiesHold) {
  const auto dual = example_dual_model(0.01);
  const auto p = dual.performance();
  EXPECT_NEAR(p.sensitivity + p.false_negative_rate, 1.0, 1e-12);
  EXPECT_NEAR(p.specificity + p.false_positive_rate, 1.0, 1e-12);
  EXPECT_NEAR(p.recall_rate,
              0.01 * p.sensitivity + 0.99 * p.false_positive_rate, 1e-12);
  EXPECT_NEAR(p.ppv * p.recall_rate, 0.01 * p.sensitivity, 1e-12);
  EXPECT_NEAR(p.npv * (1.0 - p.recall_rate), 0.99 * p.specificity, 1e-12);
  EXPECT_NEAR(p.cancer_detection_rate_per_1000, 10.0 * p.sensitivity, 1e-9);
}

TEST(DualModel, LowPrevalenceMakesPpvSmall) {
  // The screening reality: even good specificity yields low PPV at 0.7%.
  const auto p = example_dual_model(0.007).performance();
  EXPECT_LT(p.ppv, 0.25);
  EXPECT_GT(p.npv, 0.99);
}

TEST(DualModel, RetuningTradesTheTwoFailureModes) {
  const auto dual = example_dual_model();
  const auto eager = dual.with_machine_retuned(0.5, 2.0);
  const auto strict = dual.with_machine_retuned(2.0, 0.5);
  const auto base = dual.performance();
  EXPECT_GT(eager.performance().sensitivity, base.sensitivity);
  EXPECT_LT(eager.performance().specificity, base.specificity);
  EXPECT_LT(strict.performance().sensitivity, base.sensitivity);
  EXPECT_GT(strict.performance().specificity, base.specificity);
}

TEST(DualModel, ReaderDriftMovesBothSides) {
  const auto dual = example_dual_model();
  const auto complacent = dual.with_reader_drift(1.3, 1.3);
  EXPECT_LT(complacent.performance().sensitivity,
            dual.performance().sensitivity);
  EXPECT_LT(complacent.performance().specificity,
            dual.performance().specificity);
}

TEST(DualModel, EnvironmentSwapReweightsBothProfiles) {
  const auto dual = example_dual_model();
  // Move to the trial mixes: more difficult cancers, more complex normals.
  const DemandProfile fn_trial = paper::trial_profile();
  const DemandProfile fp_enriched({"typical", "complex"}, {0.6, 0.4});
  const auto moved =
      dual.with_environment(fn_trial, fp_enriched, dual.prevalence());
  EXPECT_GT(moved.performance().false_negative_rate,
            dual.performance().false_negative_rate);
  EXPECT_GT(moved.performance().false_positive_rate,
            dual.performance().false_positive_rate);
}

TEST(DualModel, CostRespondsToCostStructure) {
  const auto dual = example_dual_model();
  OutcomeCosts cheap_recalls;
  cheap_recalls.per_recall = 1.0;
  cheap_recalls.per_missed_cancer = 1000.0;
  OutcomeCosts costly_recalls;
  costly_recalls.per_recall = 100.0;
  costly_recalls.per_missed_cancer = 1000.0;
  EXPECT_LT(dual.expected_cost_per_case(cheap_recalls),
            dual.expected_cost_per_case(costly_recalls));
  OutcomeCosts negative;
  negative.per_recall = -1.0;
  EXPECT_THROW(static_cast<void>(dual.expected_cost_per_case(negative)),
               std::invalid_argument);
}

TEST(DualModel, EagerTuningPaysWhenMissesAreExpensive) {
  const auto dual = example_dual_model();
  const auto eager = dual.with_machine_retuned(0.5, 2.0);
  OutcomeCosts miss_averse;
  miss_averse.per_recall = 1.0;
  miss_averse.per_missed_cancer = 10000.0;
  EXPECT_LT(eager.expected_cost_per_case(miss_averse),
            dual.expected_cost_per_case(miss_averse));
  OutcomeCosts recall_averse;
  recall_averse.per_recall = 100.0;
  recall_averse.per_missed_cancer = 100.0;
  EXPECT_GT(eager.expected_cost_per_case(recall_averse),
            dual.expected_cost_per_case(recall_averse));
}

}  // namespace
}  // namespace hmdiv::core
