// Batched-kernel contract tests (DESIGN.md §8): the scalar simulate_case
// path is the reference implementation of each world's case distribution;
// simulate_batch may consume randomness in a different order but must be
// distributionally equivalent (chi-square on the class mix, two-proportion
// z-tests on the failure rates). Clone reuse and the serial fallback must
// be *bit*-identical to the per-batch fresh-clone scheme — the batched
// (seed, batch-substream) layout is the single golden stream per world.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/paper_example.hpp"
#include "sim/feature_world.hpp"
#include "sim/parallel_world.hpp"
#include "sim/tabular_world.hpp"
#include "sim/trial.hpp"
#include "stats/hypothesis.hpp"
#include "stats/rng.hpp"

namespace hmdiv::sim {
namespace {

// Distributional tests use fixed seeds, so these are deterministic checks,
// not flaky ones: the thresholds just have to clear the realised p-values.
constexpr double kAlpha = 1e-3;

bool same_record(const CaseRecord& a, const CaseRecord& b) {
  return a.class_index == b.class_index &&
         a.machine_failed == b.machine_failed &&
         a.human_failed == b.human_failed;
}

std::uint64_t machine_failures(const std::vector<CaseRecord>& records) {
  std::uint64_t n = 0;
  for (const auto& r : records) n += r.machine_failed ? 1 : 0;
  return n;
}

std::uint64_t human_failures(const std::vector<CaseRecord>& records) {
  std::uint64_t n = 0;
  for (const auto& r : records) n += r.human_failed ? 1 : 0;
  return n;
}

/// A world with only the scalar kernel, to pin down the base-class default.
class ScalarOnlyWorld final : public World {
 public:
  [[nodiscard]] CaseRecord simulate_case(stats::Rng& rng) override {
    CaseRecord record;
    record.class_index = rng.uniform() < 0.25 ? 1 : 0;
    record.machine_failed = rng.bernoulli(0.3);
    record.human_failed = rng.bernoulli(record.machine_failed ? 0.6 : 0.1);
    return record;
  }
  [[nodiscard]] std::size_t class_count() const override { return 2; }
  [[nodiscard]] const std::vector<std::string>& class_names() const override {
    static const std::vector<std::string> names{"easy", "difficult"};
    return names;
  }
};

/// Forwards both kernels to a wrapped world but refuses to clone, forcing
/// TrialRunner onto the serial fallback with the same substream layout.
class UncloneableWorld final : public World {
 public:
  explicit UncloneableWorld(World& inner) : inner_(inner) {}
  [[nodiscard]] CaseRecord simulate_case(stats::Rng& rng) override {
    return inner_.simulate_case(rng);
  }
  void simulate_batch(std::span<CaseRecord> out, stats::Rng& rng) override {
    inner_.simulate_batch(out, rng);
  }
  [[nodiscard]] std::size_t class_count() const override {
    return inner_.class_count();
  }
  [[nodiscard]] const std::vector<std::string>& class_names() const override {
    return inner_.class_names();
  }

 private:
  World& inner_;
};

TEST(BatchSim, DefaultBatchIsTheSequentialScalarLoop) {
  ScalarOnlyWorld world;
  stats::Rng batch_rng(7), scalar_rng(7);
  std::vector<CaseRecord> batched(1000);
  world.simulate_batch(batched, batch_rng);
  for (const auto& record : batched) {
    EXPECT_TRUE(same_record(record, world.simulate_case(scalar_rng)));
  }
  EXPECT_EQ(batch_rng.next_u64(), scalar_rng.next_u64());
}

TEST(BatchSim, DefaultCapabilityQueriesMatchCloneBehaviour) {
  ScalarOnlyWorld plain;
  EXPECT_EQ(plain.clone(), nullptr);
  EXPECT_FALSE(plain.cloneable());
  EXPECT_FALSE(plain.stateless());

  TabularWorld tabular(core::paper::example_model(),
                       core::paper::trial_profile());
  EXPECT_NE(tabular.clone(), nullptr);
  EXPECT_TRUE(tabular.cloneable());
  EXPECT_TRUE(tabular.stateless());

  // The reference reader is static (adaptation_rate = 0), so the world is
  // stateless even with adaptation nominally enabled; give it a learning
  // rate and it becomes stateful until adaptation is frozen.
  const FeatureWorld reference = reference_feature_world();
  EXPECT_TRUE(reference.cloneable());
  EXPECT_TRUE(reference.stateless());
  ReaderModel::Config adapting = reference.reader().config();
  adapting.adaptation_rate = 0.1;
  FeatureWorld feature(reference.generator(), reference.cadt(),
                       ReaderModel(adapting));
  EXPECT_TRUE(feature.cloneable());
  EXPECT_FALSE(feature.stateless());
  feature.set_adaptation_enabled(false);
  EXPECT_TRUE(feature.stateless());
}

TEST(BatchSim, TabularBatchClassMixMatchesProfile) {
  TabularWorld world(core::paper::example_model(),
                     core::paper::trial_profile());
  std::vector<CaseRecord> records(200000);
  stats::Rng rng(11);
  world.simulate_batch(records, rng);
  std::vector<std::uint64_t> counts(world.class_count(), 0);
  for (const auto& r : records) ++counts[r.class_index];
  std::vector<double> expected(world.class_count());
  for (std::size_t x = 0; x < expected.size(); ++x) {
    expected[x] = world.profile().probability(x);
  }
  const auto gof = stats::chi_square_goodness_of_fit(counts, expected);
  EXPECT_GT(gof.p_value, kAlpha);
}

TEST(BatchSim, TabularBatchFailureRatesMatchScalarReference) {
  TabularWorld world(core::paper::example_model(),
                     core::paper::trial_profile());
  constexpr std::size_t kCases = 200000;

  std::vector<CaseRecord> batched(kCases);
  stats::Rng batch_rng(12);
  world.simulate_batch(batched, batch_rng);

  std::vector<CaseRecord> scalar(kCases);
  stats::Rng scalar_rng(13);
  for (auto& record : scalar) record = world.simulate_case(scalar_rng);

  const auto machine = stats::two_proportion_z_test(
      machine_failures(batched), kCases, machine_failures(scalar), kCases);
  EXPECT_GT(machine.p_value, kAlpha);
  const auto human = stats::two_proportion_z_test(
      human_failures(batched), kCases, human_failures(scalar), kCases);
  EXPECT_GT(human.p_value, kAlpha);
}

TEST(BatchSim, FeatureWorldBatchSharesTheScalarStream) {
  // FeatureWorld's batch kernel is the devirtualised scalar loop, so batch
  // and scalar agree bit-for-bit, not merely in distribution.
  FeatureWorld batch_world = reference_feature_world();
  FeatureWorld scalar_world = reference_feature_world();
  stats::Rng batch_rng(21), scalar_rng(21);
  std::vector<CaseRecord> batched(5000);
  batch_world.simulate_batch(batched, batch_rng);
  for (const auto& record : batched) {
    EXPECT_TRUE(same_record(record, scalar_world.simulate_case(scalar_rng)));
  }
  EXPECT_EQ(batch_rng.next_u64(), scalar_rng.next_u64());
}

TEST(BatchSim, ParallelWorldBatchMatchesScalarDistribution) {
  const FeatureWorld base = reference_feature_world();
  const ParallelProcedureWorld world(base.generator(), base.cadt(),
                                     base.reader());
  constexpr std::size_t kCases = 200000;

  stats::Rng batch_rng(31);
  std::vector<ParallelProcedureRecord> batched(kCases);
  world.simulate_batch(batched, batch_rng);

  stats::Rng scalar_rng(32);
  ParallelProcedureWorld scalar_world(base.generator(), base.cadt(),
                                      base.reader());
  std::vector<ParallelProcedureRecord> scalar(kCases);
  for (auto& record : scalar) record = scalar_world.simulate_case(scalar_rng);

  std::vector<std::uint64_t> counts(world.class_count(), 0);
  for (const auto& r : batched) ++counts[r.class_index];
  std::vector<double> expected(world.class_count());
  for (std::size_t x = 0; x < expected.size(); ++x) {
    expected[x] = base.generator().profile().probability(x);
  }
  const auto gof = stats::chi_square_goodness_of_fit(counts, expected);
  EXPECT_GT(gof.p_value, kAlpha);

  const auto count_of = [](const std::vector<ParallelProcedureRecord>& rs,
                           auto field) {
    std::uint64_t n = 0;
    for (const auto& r : rs) n += field(r) ? 1 : 0;
    return n;
  };
  for (const auto& field : {
           +[](const ParallelProcedureRecord& r) { return r.machine_failed; },
           +[](const ParallelProcedureRecord& r) { return r.human_missed; },
           +[](const ParallelProcedureRecord& r) { return r.system_failed; },
       }) {
    const auto test = stats::two_proportion_z_test(
        count_of(batched, field), kCases, count_of(scalar, field), kCases);
    EXPECT_GT(test.p_value, kAlpha);
  }
}

TEST(BatchSim, CloneReuseIsBitIdenticalToClonePerBatch) {
  TabularWorld world(core::paper::example_model(),
                     core::paper::trial_profile());
  // Mixed full/partial batches, enough of them for real pool reuse.
  const std::uint64_t cases = 5 * TrialRunner::kBatchSize + 123;
  const std::uint64_t seed = 20030623;

  // Baseline: the documented per-batch scheme, built by hand — one fresh
  // clone and one Rng(seed, batch) substream per kBatchSize slice.
  std::vector<CaseRecord> baseline(cases);
  for (std::uint64_t batch = 0, begin = 0; begin < cases; ++batch) {
    const std::uint64_t end = std::min(cases, begin + TrialRunner::kBatchSize);
    const std::unique_ptr<World> clone = world.clone();
    stats::Rng batch_rng(seed, batch);
    clone->simulate_batch(
        std::span<CaseRecord>(baseline).subspan(begin, end - begin),
        batch_rng);
    begin = end;
  }

  TrialRunner runner(world, cases);
  for (const unsigned threads : {1u, 4u}) {
    const TrialData data = runner.run(seed, exec::Config{threads});
    ASSERT_EQ(data.records.size(), baseline.size()) << threads;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_TRUE(same_record(data.records[i], baseline[i]))
          << "threads " << threads << " case " << i;
    }
  }
}

TEST(BatchSim, SerialFallbackKeepsTheBatchedStream) {
  // A world that cannot clone runs serially but must still produce the
  // canonical (seed, batch-substream) records.
  TabularWorld inner(core::paper::example_model(),
                     core::paper::trial_profile());
  UncloneableWorld uncloneable(inner);
  EXPECT_FALSE(uncloneable.cloneable());

  const std::uint64_t cases = 2 * TrialRunner::kBatchSize + 17;
  const std::uint64_t seed = 99;
  TrialRunner pooled(inner, cases);
  TrialRunner serial(uncloneable, cases);
  const TrialData expected = pooled.run(seed, exec::Config{4});
  const TrialData actual = serial.run(seed, exec::Config{4});
  ASSERT_EQ(actual.records.size(), expected.records.size());
  for (std::size_t i = 0; i < expected.records.size(); ++i) {
    ASSERT_TRUE(same_record(actual.records[i], expected.records[i])) << i;
  }
}

}  // namespace
}  // namespace hmdiv::sim
