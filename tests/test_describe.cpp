// Unit tests for core/describe.hpp (table rendering of models/results) and
// the stats quantile helpers added for the uncertainty layer.
#include "core/describe.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/paper_example.hpp"
#include "stats/summary.hpp"

namespace hmdiv::core {
namespace {

TEST(Describe, ParameterTableMatchesPaperLayout) {
  const auto table = parameter_table(paper::example_model(),
                                     paper::trial_profile(),
                                     paper::field_profile());
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column_count(), 7u);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("easy"), std::string::npos);
  EXPECT_NE(text.find("difficult"), std::string::npos);
  EXPECT_NE(text.find("0.07"), std::string::npos);
  EXPECT_NE(text.find("0.90"), std::string::npos);  // PHf|Mf difficult
}

TEST(Describe, FailureTableContainsPaperNumbers) {
  const auto table = failure_table(paper::example_model(),
                                   paper::trial_profile(),
                                   paper::field_profile());
  const std::string text = table.to_text();
  EXPECT_NE(text.find("0.143"), std::string::npos);
  EXPECT_NE(text.find("0.605"), std::string::npos);
  EXPECT_NE(text.find("0.235"), std::string::npos);
  EXPECT_NE(text.find("0.189"), std::string::npos);
}

TEST(Describe, DecompositionTableSumsUp) {
  const auto d = paper::example_model().decompose(paper::field_profile());
  const auto table = decomposition_table(d);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("0.1890"), std::string::npos);  // total
  EXPECT_NE(text.find("0.1660"), std::string::npos);  // floor
}

TEST(Describe, ScenarioTableOneRowPerScenario) {
  const Extrapolator e(paper::example_model(), paper::trial_profile());
  Scenario a;
  a.name = "alpha";
  Scenario b;
  b.name = "beta";
  b.profile = paper::field_profile();
  const auto table = scenario_table(e.evaluate_all({a, b}));
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_NE(table.to_text().find("alpha"), std::string::npos);
  EXPECT_NE(table.to_text().find("beta"), std::string::npos);
}

TEST(Describe, ImprovementTableShowsGains) {
  const DesignAdvisor advisor(paper::example_model(), paper::field_profile());
  const auto ranked = advisor.rank(
      {ImprovementCandidate{"difficult x10", paper::kDifficult, 0.1}});
  const auto table = improvement_table(ranked);
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.to_text().find("difficult x10"), std::string::npos);
}

TEST(Describe, RejectsMismatchedProfiles) {
  const DemandProfile wrong({"x", "y"}, {0.5, 0.5});
  EXPECT_THROW(static_cast<void>(parameter_table(
                   paper::example_model(), wrong, paper::field_profile())),
               std::invalid_argument);
}

TEST(Quantiles, SortedQuantileInterpolates) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(stats::sorted_quantile(sorted, 0.0), 1.0);
  EXPECT_EQ(stats::sorted_quantile(sorted, 1.0), 4.0);
  EXPECT_NEAR(stats::sorted_quantile(sorted, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(stats::sorted_quantile(sorted, 1.0 / 3.0), 2.0, 1e-12);
  const std::vector<double> empty;
  EXPECT_THROW(static_cast<void>(stats::sorted_quantile(empty, 0.5)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(stats::sorted_quantile(sorted, 1.5)),
               std::invalid_argument);
}

TEST(Quantiles, QuantilesSortsACopy) {
  const std::vector<double> values{3.0, 1.0, 4.0, 2.0};
  const std::vector<double> qs{0.0, 0.5, 1.0};
  const auto out = stats::quantiles(values, qs);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_NEAR(out[1], 2.5, 1e-12);
  EXPECT_EQ(out[2], 4.0);
  // Input untouched.
  EXPECT_EQ(values[0], 3.0);
}

}  // namespace
}  // namespace hmdiv::core
