// Unit tests for rbd/importance.hpp (Birnbaum & friends).
#include "rbd/importance.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace hmdiv::rbd {
namespace {

TEST(Birnbaum, SeriesImportanceIsProductOfOthers) {
  const auto s = Structure::series(
      {Structure::component(0), Structure::component(1),
       Structure::component(2)});
  const std::vector<double> p{0.9, 0.8, 0.7};
  // dP/dp0 = p1·p2.
  EXPECT_NEAR(birnbaum_importance(s, p, 0), 0.8 * 0.7, 1e-12);
  EXPECT_NEAR(birnbaum_importance(s, p, 1), 0.9 * 0.7, 1e-12);
  EXPECT_NEAR(birnbaum_importance(s, p, 2), 0.9 * 0.8, 1e-12);
}

TEST(Birnbaum, ParallelImportanceIsProductOfOtherFailures) {
  const auto s = Structure::any_of(
      {Structure::component(0), Structure::component(1)});
  const std::vector<double> p{0.9, 0.8};
  EXPECT_NEAR(birnbaum_importance(s, p, 0), 1.0 - 0.8, 1e-12);
  EXPECT_NEAR(birnbaum_importance(s, p, 1), 1.0 - 0.9, 1e-12);
}

TEST(Birnbaum, WeakestComponentInSeriesIsMostImportant) {
  const auto s = Structure::series(
      {Structure::component(0), Structure::component(1)});
  const std::vector<double> p{0.99, 0.5};
  // The reliable component's importance (through the weak one) is lower.
  EXPECT_GT(birnbaum_importance(s, p, 1), birnbaum_importance(s, p, 0));
}

TEST(Birnbaum, AllImportancesAtOnce) {
  const auto s = Structure::series(
      {Structure::any_of(
           {Structure::component(0), Structure::component(1)}),
       Structure::component(2)});
  const std::vector<double> p{0.93, 0.8, 0.9};
  const auto all = birnbaum_importances(s, p);
  ASSERT_EQ(all.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(all[i], birnbaum_importance(s, p, i), 1e-12) << i;
  }
}

TEST(Birnbaum, MatchesCentralDifference) {
  const auto s = Structure::series(
      {Structure::any_of(
           {Structure::component(0), Structure::component(1)}),
       Structure::component(2)});
  std::vector<double> p{0.93, 0.8, 0.9};
  const double h = 1e-6;
  for (std::size_t i = 0; i < 3; ++i) {
    auto up = p, down = p;
    up[i] += h;
    down[i] -= h;
    const double fd =
        (s.success_probability(up) - s.success_probability(down)) / (2 * h);
    EXPECT_NEAR(birnbaum_importance(s, p, i), fd, 1e-6) << i;
  }
}

TEST(ImprovementPotential, PerfectingAComponent) {
  const auto s = Structure::series(
      {Structure::component(0), Structure::component(1)});
  const std::vector<double> p{0.9, 0.8};
  EXPECT_NEAR(improvement_potential(s, p, 1), 0.9 - 0.72, 1e-12);
  EXPECT_NEAR(improvement_potential(s, p, 0), 0.8 - 0.72, 1e-12);
}

TEST(Criticality, ScalesByFailureShares) {
  const auto s = Structure::series(
      {Structure::component(0), Structure::component(1)});
  const std::vector<double> p{0.9, 0.8};
  const double system_failure = 1.0 - 0.72;
  EXPECT_NEAR(criticality_importance(s, p, 0),
              birnbaum_importance(s, p, 0) * 0.1 / system_failure, 1e-12);
  EXPECT_NEAR(criticality_importance(s, p, 1),
              birnbaum_importance(s, p, 1) * 0.2 / system_failure, 1e-12);
}

TEST(Criticality, ZeroWhenSystemNeverFails) {
  const auto s = Structure::component(0);
  const std::vector<double> p{1.0};
  EXPECT_EQ(criticality_importance(s, p, 0), 0.0);
}

TEST(Importance, RejectsBadIndex) {
  const auto s = Structure::component(0);
  const std::vector<double> p{0.5};
  EXPECT_THROW(birnbaum_importance(s, p, 1), std::invalid_argument);
  EXPECT_THROW(improvement_potential(s, p, 1), std::invalid_argument);
  EXPECT_THROW(criticality_importance(s, p, 1), std::invalid_argument);
}

TEST(Importance, HandlesSharedComponentsViaEnumeration) {
  const auto shared = Structure::any_of(
      {Structure::series({Structure::component(0), Structure::component(1)}),
       Structure::series({Structure::component(0), Structure::component(2)})});
  const std::vector<double> p{0.5, 0.6, 0.7};
  // P(works) = p0·(1 − (1−p1)(1−p2)); dP/dp0 = 1 − (1−p1)(1−p2) = 0.88.
  EXPECT_NEAR(birnbaum_importance(shared, p, 0), 0.88, 1e-12);
}

}  // namespace
}  // namespace hmdiv::rbd
