// Unit tests for core/roc.hpp and the CADT score interface.
#include "core/roc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/cadt.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"

namespace hmdiv::core {
namespace {

TEST(BinormalAuc, KnownValues) {
  EXPECT_NEAR(binormal_auc(0.0), 0.5, 1e-12);
  // Equal-variance binormal: AUC = Phi(d'/sqrt(2)).
  EXPECT_NEAR(binormal_auc(1.0), stats::normal_cdf(1.0 / std::sqrt(2.0)),
              1e-12);
  EXPECT_GT(binormal_auc(3.0), 0.98);
  // A worse-than-chance detector mirrors below 0.5.
  EXPECT_NEAR(binormal_auc(-1.0), 1.0 - binormal_auc(1.0), 1e-12);
  EXPECT_THROW(static_cast<void>(binormal_auc(1.0, 0.0)),
               std::invalid_argument);
}

TEST(EmpiricalAuc, PerfectAndChanceSeparation) {
  const std::vector<double> high{2.0, 3.0, 4.0};
  const std::vector<double> low{-1.0, 0.0, 1.0};
  EXPECT_EQ(empirical_auc(high, low), 1.0);
  EXPECT_EQ(empirical_auc(low, high), 0.0);
  EXPECT_NEAR(empirical_auc(high, high), 0.5, 1e-12);  // all ties
}

TEST(EmpiricalAuc, HandlesTiesAsHalfWins) {
  const std::vector<double> positives{1.0, 2.0};
  const std::vector<double> negatives{1.0, 0.0};
  // Pairs: (1,1)=0.5, (1,0)=1, (2,1)=1, (2,0)=1 => 3.5/4.
  EXPECT_NEAR(empirical_auc(positives, negatives), 3.5 / 4.0, 1e-12);
  const std::vector<double> empty;
  EXPECT_THROW(static_cast<void>(empirical_auc(empty, negatives)),
               std::invalid_argument);
}

TEST(EmpiricalAuc, ConvergesToBinormalTruth) {
  stats::Rng rng(2718);
  const double delta = 1.3;
  std::vector<double> positives, negatives;
  for (int i = 0; i < 20000; ++i) {
    positives.push_back(rng.normal(delta, 1.0));
    negatives.push_back(rng.normal(0.0, 1.0));
  }
  EXPECT_NEAR(empirical_auc(positives, negatives), binormal_auc(delta),
              0.006);
}

TEST(RocCurve, EndpointsAndMonotonicity) {
  stats::Rng rng(2719);
  std::vector<double> positives, negatives;
  for (int i = 0; i < 2000; ++i) {
    positives.push_back(rng.normal(1.0, 1.0));
    negatives.push_back(rng.normal(0.0, 1.0));
  }
  const auto curve = empirical_roc_curve(positives, negatives);
  EXPECT_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_EQ(curve.back().true_positive_rate, 1.0);
  EXPECT_EQ(curve.back().false_positive_rate, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
    EXPECT_GE(curve[i].false_positive_rate, curve[i - 1].false_positive_rate);
  }
  // Trapezoidal area matches the Mann-Whitney AUC (continuous scores).
  EXPECT_NEAR(curve_auc(curve), empirical_auc(positives, negatives), 1e-9);
}

TEST(RocCurve, CurveAucValidatesInput) {
  const std::vector<RocPoint> one{RocPoint{}};
  EXPECT_THROW(static_cast<void>(curve_auc(one)), std::invalid_argument);
}

TEST(CadtScores, ScoreSignReproducesPromptProbability) {
  sim::CadtModel::Config config;
  config.capability = 1.5;
  config.sensitivity_slope = 1.4;
  const sim::CadtModel cadt(config);
  stats::Rng rng(31);
  for (const double difficulty : {-0.5, 1.0, 2.5}) {
    int prompts = 0;
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
      prompts += cadt.sample_score(difficulty, rng) > 0.0 ? 1 : 0;
    }
    EXPECT_NEAR(prompts / static_cast<double>(n),
                cadt.prompt_probability(difficulty), 0.01)
        << difficulty;
  }
}

TEST(CadtScores, AucSeparatesEasyFromDifficultMachineCases) {
  // The detector's scores on machine-easy cancers stochastically dominate
  // those on machine-difficult ones; AUC quantifies the gap.
  sim::CadtModel::Config config;
  config.capability = 1.5;
  config.sensitivity_slope = 1.4;
  const sim::CadtModel cadt(config);
  stats::Rng rng(32);
  std::vector<double> easy_scores, difficult_scores;
  for (int i = 0; i < 8000; ++i) {
    easy_scores.push_back(cadt.sample_score(-0.9, rng));
    difficult_scores.push_back(cadt.sample_score(1.1, rng));
  }
  const double auc = empirical_auc(easy_scores, difficult_scores);
  EXPECT_GT(auc, 0.75);
  EXPECT_LT(auc, 1.0);
}

}  // namespace
}  // namespace hmdiv::core
