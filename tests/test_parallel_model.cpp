// Unit + property tests for core/parallel_model.hpp (Section 3 model).
#include "core/parallel_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace hmdiv::core {
namespace {

ParallelDetectionModel two_class_model() {
  ParallelClassConditional easy;
  easy.p_machine_misses = 0.07;
  easy.p_human_misses = 0.1;
  easy.p_human_misclassifies = 0.13;
  ParallelClassConditional difficult;
  difficult.p_machine_misses = 0.41;
  difficult.p_human_misses = 0.6;
  difficult.p_human_misclassifies = 0.3;
  return ParallelDetectionModel({"easy", "difficult"}, {easy, difficult});
}

DemandProfile trial() { return DemandProfile({"easy", "difficult"}, {0.8, 0.2}); }

TEST(ParallelModel, ValidatesConstruction) {
  ParallelClassConditional ok;
  ParallelClassConditional bad;
  bad.p_human_misses = -0.1;
  EXPECT_THROW(ParallelDetectionModel({}, {}), std::invalid_argument);
  EXPECT_THROW(ParallelDetectionModel({"a"}, {ok, ok}), std::invalid_argument);
  EXPECT_THROW(ParallelDetectionModel({"a"}, {bad}), std::invalid_argument);
}

TEST(ParallelModel, Equation1PerClass) {
  const auto m = two_class_model();
  // Eq. (1): detection failure + (1 − detection failure)·misclass.
  const double det0 = 0.07 * 0.1;
  EXPECT_NEAR(m.system_failure_given_class(0), det0 + (1 - det0) * 0.13,
              1e-12);
  const double det1 = 0.41 * 0.6;
  EXPECT_NEAR(m.system_failure_given_class(1), det1 + (1 - det1) * 0.3,
              1e-12);
  EXPECT_THROW(static_cast<void>(m.system_failure_given_class(2)),
               std::invalid_argument);
}

TEST(ParallelModel, Equation3CovarianceIdentity) {
  const auto m = two_class_model();
  const auto p = trial();
  const double exact = m.detection_failure_probability(p);
  // Marginal product + covariance must reproduce the exact value.
  const double p_mf = 0.8 * 0.07 + 0.2 * 0.41;
  const double p_hmiss = 0.8 * 0.1 + 0.2 * 0.6;
  EXPECT_NEAR(exact, p_mf * p_hmiss + m.detection_covariance(p), 1e-12);
  EXPECT_GT(m.detection_covariance(p), 0.0);
}

TEST(ParallelModel, NaiveIndependenceIsOptimisticHere) {
  const auto m = two_class_model();
  const auto p = trial();
  EXPECT_LT(m.system_failure_assuming_independence(p),
            m.system_failure_probability(p));
}

TEST(ParallelModel, StructureMatchesFigure2) {
  const auto s = ParallelDetectionModel::structure();
  EXPECT_EQ(s.to_string(), "series(any_of(c0, c1), c2)");
  // RBD evaluation equals Eq. (1) for any parameter set.
  const double p_mf = 0.2, p_hmiss = 0.3, p_hmisclass = 0.15;
  const std::vector<double> success{1 - p_mf, 1 - p_hmiss, 1 - p_hmisclass};
  const double det = p_mf * p_hmiss;
  EXPECT_NEAR(1.0 - s.success_probability(success),
              det + (1 - det) * p_hmisclass, 1e-12);
}

TEST(ParallelModel, ToSequentialPreservesMachineBehaviour) {
  const auto m = two_class_model();
  const auto seq = m.to_sequential();
  for (std::size_t x = 0; x < m.class_count(); ++x) {
    EXPECT_NEAR(seq.parameters(x).p_machine_fails,
                m.parameters(x).p_machine_misses, 1e-12);
  }
}

TEST(ParallelModel, ToSequentialHasNonnegativeImportance) {
  // In the parallel-detection world the machine can only help: t(x) >= 0.
  const auto seq = two_class_model().to_sequential();
  for (std::size_t x = 0; x < seq.class_count(); ++x) {
    EXPECT_GE(seq.importance_index(x), 0.0) << x;
  }
}

/// Property: the sequential embedding reproduces the parallel model's
/// failure probabilities exactly, per class and profile-weighted.
class ParallelEmbedding : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelEmbedding, SequentialEmbeddingIsExact) {
  stats::Rng rng(GetParam());
  const std::size_t classes = 2 + rng.uniform_index(5);
  std::vector<std::string> names;
  std::vector<ParallelClassConditional> params;
  std::vector<double> weights;
  for (std::size_t x = 0; x < classes; ++x) {
    names.push_back("c" + std::to_string(x));
    ParallelClassConditional c;
    c.p_machine_misses = rng.uniform();
    c.p_human_misses = rng.uniform();
    c.p_human_misclassifies = rng.uniform();
    params.push_back(c);
    weights.push_back(rng.uniform() + 0.01);
  }
  const ParallelDetectionModel parallel(names, params);
  const auto seq = parallel.to_sequential();
  const auto profile = DemandProfile::from_weights(names, weights);
  for (std::size_t x = 0; x < classes; ++x) {
    EXPECT_NEAR(seq.system_failure_given_class(x),
                parallel.system_failure_given_class(x), 1e-12)
        << x;
  }
  EXPECT_NEAR(seq.system_failure_probability(profile),
              parallel.system_failure_probability(profile), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEmbedding,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace hmdiv::core
