// Unit tests for core/analysis_report.hpp.
#include "core/analysis_report.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/paper_example.hpp"

namespace hmdiv::core {
namespace {

TEST(AnalysisReport, MarkdownContainsAllSections) {
  const auto text = analysis_report(paper::example_model(),
                                    paper::trial_profile(),
                                    paper::field_profile());
  EXPECT_NE(text.find("# Human-machine system analysis"), std::string::npos);
  EXPECT_NE(text.find("## Model parameters"), std::string::npos);
  EXPECT_NE(text.find("## System failure probabilities"), std::string::npos);
  EXPECT_NE(text.find("## Eq. (10) decomposition"), std::string::npos);
  EXPECT_NE(text.find("## Sensitivities"), std::string::npos);
  EXPECT_NE(text.find("## Design advice"), std::string::npos);
  // The paper's numbers appear.
  EXPECT_NE(text.find("0.235"), std::string::npos);
  EXPECT_NE(text.find("0.189"), std::string::npos);
  EXPECT_NE(text.find("best machine-improvement target: difficult"),
            std::string::npos);
}

TEST(AnalysisReport, TextModeDropsMarkdown) {
  ReportOptions options;
  options.markdown = false;
  const auto text = analysis_report(paper::example_model(),
                                    paper::trial_profile(),
                                    paper::field_profile(), options);
  EXPECT_EQ(text.find("##"), std::string::npos);
  EXPECT_NE(text.find("== Model parameters =="), std::string::npos);
}

TEST(AnalysisReport, SectionsCanBeDisabled) {
  ReportOptions options;
  options.include_parameters = false;
  options.include_sensitivities = false;
  options.include_design_advice = false;
  const auto text = analysis_report(paper::example_model(),
                                    paper::trial_profile(),
                                    paper::field_profile(), options);
  EXPECT_EQ(text.find("## Model parameters"), std::string::npos);
  EXPECT_EQ(text.find("## Sensitivities"), std::string::npos);
  EXPECT_EQ(text.find("## Design advice"), std::string::npos);
  EXPECT_NE(text.find("## Eq. (10) decomposition"), std::string::npos);
}

TEST(AnalysisReport, ValidatesProfiles) {
  const DemandProfile wrong({"x", "y"}, {0.5, 0.5});
  EXPECT_THROW(static_cast<void>(analysis_report(
                   paper::example_model(), wrong, paper::field_profile())),
               std::invalid_argument);
}

TEST(DualAnalysisReport, ContainsPerformanceAndTradeoff) {
  const auto text = dual_analysis_report(example_dual_model());
  EXPECT_NE(text.find("# Screening performance"), std::string::npos);
  EXPECT_NE(text.find("sensitivity"), std::string::npos);
  EXPECT_NE(text.find("## Machine re-tuning trade-off"), std::string::npos);
  EXPECT_NE(text.find("more eager"), std::string::npos);
}

TEST(DualAnalysisReport, TextMode) {
  const auto text =
      dual_analysis_report(example_dual_model(), OutcomeCosts{}, false);
  EXPECT_EQ(text.find("##"), std::string::npos);
  EXPECT_NE(text.find("SCREENING PERFORMANCE"), std::string::npos);
}

}  // namespace
}  // namespace hmdiv::core
