// Unit tests for core/model_io.hpp (plain-text model persistence).
#include "core/model_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/paper_example.hpp"
#include "stats/rng.hpp"

namespace hmdiv::core {
namespace {

TEST(ModelIo, ModelRoundTripIsExact) {
  const auto original = paper::example_model();
  const auto parsed = parse_sequential_model(to_text(original));
  ASSERT_EQ(parsed.class_count(), original.class_count());
  EXPECT_EQ(parsed.class_names(), original.class_names());
  for (std::size_t x = 0; x < original.class_count(); ++x) {
    EXPECT_DOUBLE_EQ(parsed.parameters(x).p_machine_fails,
                     original.parameters(x).p_machine_fails);
    EXPECT_DOUBLE_EQ(parsed.parameters(x).p_human_fails_given_machine_fails,
                     original.parameters(x).p_human_fails_given_machine_fails);
    EXPECT_DOUBLE_EQ(
        parsed.parameters(x).p_human_fails_given_machine_succeeds,
        original.parameters(x).p_human_fails_given_machine_succeeds);
  }
}

TEST(ModelIo, ProfileRoundTripIsExact) {
  const auto original = paper::field_profile();
  const auto parsed = parse_demand_profile(to_text(original));
  EXPECT_EQ(parsed.class_names(), original.class_names());
  for (std::size_t x = 0; x < original.class_count(); ++x) {
    EXPECT_DOUBLE_EQ(parsed[x], original[x]);
  }
}

TEST(ModelIo, RoundTripPreservesAwkwardDoubles) {
  stats::Rng rng(31415);
  std::vector<std::string> names;
  std::vector<ClassConditional> params;
  for (std::size_t x = 0; x < 5; ++x) {
    names.push_back("c" + std::to_string(x));
    ClassConditional c;
    c.p_machine_fails = rng.uniform();
    c.p_human_fails_given_machine_fails = rng.uniform();
    c.p_human_fails_given_machine_succeeds = rng.uniform();
    params.push_back(c);
  }
  const SequentialModel original(names, params);
  const auto parsed = parse_sequential_model(to_text(original));
  const DemandProfile uniform =
      DemandProfile::from_weights(names, {1, 1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(parsed.system_failure_probability(uniform),
                   original.system_failure_probability(uniform));
}

TEST(ModelIo, StreamsMatchStringForms) {
  const auto model = paper::example_model();
  std::ostringstream out;
  write_model(out, model);
  EXPECT_EQ(out.str(), to_text(model));
  std::istringstream in(out.str());
  const auto parsed = read_model(in);
  EXPECT_EQ(parsed.class_names(), model.class_names());

  const auto profile = paper::trial_profile();
  std::ostringstream pout;
  write_profile(pout, profile);
  std::istringstream pin(pout.str());
  EXPECT_EQ(read_profile(pin).class_names(), profile.class_names());
}

TEST(ModelIo, IgnoresCommentsAndBlankLines) {
  const std::string text =
      "hmdiv-sequential-model v1\n"
      "\n"
      "# a comment\n"
      "class easy 0.07 0.18 0.14\n"
      "\n"
      "class difficult 0.41 0.9 0.4\n";
  const auto parsed = parse_sequential_model(text);
  EXPECT_EQ(parsed.class_count(), 2u);
  EXPECT_NEAR(parsed.parameters(1).p_machine_fails, 0.41, 1e-12);
}

TEST(ModelIo, RejectsWrongHeader) {
  EXPECT_THROW(static_cast<void>(parse_sequential_model("bogus v9\n")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_demand_profile(
                   "hmdiv-sequential-model v1\nclass a 1\n")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_sequential_model("")),
               std::invalid_argument);
}

TEST(ModelIo, RejectsMalformedLines) {
  const std::string missing_field =
      "hmdiv-sequential-model v1\nclass easy 0.07 0.18\n";
  EXPECT_THROW(static_cast<void>(parse_sequential_model(missing_field)),
               std::invalid_argument);
  const std::string bad_number =
      "hmdiv-sequential-model v1\nclass easy 0.07 zebra 0.14\n";
  EXPECT_THROW(static_cast<void>(parse_sequential_model(bad_number)),
               std::invalid_argument);
  const std::string out_of_range =
      "hmdiv-sequential-model v1\nclass easy 1.07 0.18 0.14\n";
  EXPECT_THROW(static_cast<void>(parse_sequential_model(out_of_range)),
               std::invalid_argument);
  const std::string trailing_junk =
      "hmdiv-sequential-model v1\nclass easy 0.07x 0.18 0.14\n";
  EXPECT_THROW(static_cast<void>(parse_sequential_model(trailing_junk)),
               std::invalid_argument);
  const std::string no_classes = "hmdiv-sequential-model v1\n";
  EXPECT_THROW(static_cast<void>(parse_sequential_model(no_classes)),
               std::invalid_argument);
}

TEST(ModelIo, ErrorsReportLineNumbers) {
  const std::string text =
      "hmdiv-sequential-model v1\n"
      "class ok 0.1 0.2 0.3\n"
      "class bad 0.1 0.2\n";
  try {
    static_cast<void>(parse_sequential_model(text));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(ModelIo, ProfileMustSumToOne) {
  const std::string text =
      "hmdiv-demand-profile v1\nclass a 0.5\nclass b 0.6\n";
  EXPECT_THROW(static_cast<void>(parse_demand_profile(text)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::core
