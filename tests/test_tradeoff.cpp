// Unit tests for core/tradeoff.hpp (FN/FP trade-off, Conclusions).
#include "core/tradeoff.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace hmdiv::core {
namespace {

TradeoffAnalyzer reference_analyzer(double prevalence = 0.01) {
  BinormalMachine machine;
  machine.cancer_class_means = {2.0, 0.8};   // easy, difficult cancers
  machine.normal_class_means = {-2.0, -0.5}; // typical, complex normals
  DemandProfile cancers({"easy", "difficult"}, {0.9, 0.1});
  std::vector<HumanFnResponse> fn(2);
  fn[0] = {0.14, 0.18};
  fn[1] = {0.4, 0.9};
  DemandProfile normals({"typical", "complex"}, {0.85, 0.15});
  std::vector<HumanFpResponse> fp(2);
  fp[0] = {0.10, 0.02};
  fp[1] = {0.35, 0.12};
  return TradeoffAnalyzer(std::move(machine), std::move(cancers),
                          std::move(fn), std::move(normals), std::move(fp),
                          prevalence);
}

TEST(BinormalMachine, ProbabilitiesFollowThreshold) {
  BinormalMachine m;
  m.cancer_class_means = {1.0};
  m.normal_class_means = {-1.0};
  // At threshold = mean, FN probability is 0.5.
  EXPECT_NEAR(m.p_false_negative(0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(m.p_false_positive(0, -1.0), 0.5, 1e-12);
  // Lower threshold => fewer FN, more FP.
  EXPECT_LT(m.p_false_negative(0, 0.0), m.p_false_negative(0, 1.0));
  EXPECT_GT(m.p_false_positive(0, 0.0), m.p_false_positive(0, 1.0));
  EXPECT_THROW(static_cast<void>(m.p_false_negative(1, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(m.p_false_positive(1, 0.0)),
               std::invalid_argument);
}

TEST(TradeoffAnalyzer, ValidatesConstruction) {
  BinormalMachine machine;
  machine.cancer_class_means = {1.0};
  machine.normal_class_means = {-1.0};
  DemandProfile one({"a"}, {1.0});
  std::vector<HumanFnResponse> fn(1);
  std::vector<HumanFpResponse> fp(1);
  EXPECT_THROW(TradeoffAnalyzer(machine, one, {}, one, fp, 0.01),
               std::invalid_argument);
  EXPECT_THROW(TradeoffAnalyzer(machine, one, fn, one, fp, 0.0),
               std::invalid_argument);
  EXPECT_THROW(TradeoffAnalyzer(machine, one, fn, one, fp, 1.0),
               std::invalid_argument);
  std::vector<HumanFnResponse> bad_fn(1);
  bad_fn[0].p_fail_given_machine_silent = 1.5;
  EXPECT_THROW(TradeoffAnalyzer(machine, one, bad_fn, one, fp, 0.01),
               std::invalid_argument);
}

TEST(TradeoffAnalyzer, MachineRatesAreMonotoneInThreshold) {
  const auto analyzer = reference_analyzer();
  double previous_fn = -1.0, previous_fp = 2.0;
  for (double threshold = -3.0; threshold <= 3.0; threshold += 0.5) {
    const auto point = analyzer.evaluate(threshold);
    EXPECT_GT(point.machine_fn, previous_fn);
    EXPECT_LT(point.machine_fp, previous_fp);
    previous_fn = point.machine_fn;
    previous_fp = point.machine_fp;
  }
}

TEST(TradeoffAnalyzer, SystemInheritsTheTradeoffShape) {
  // With positive importance indices on both sides, the system's FN rises
  // and FP falls as the machine becomes less eager.
  const auto analyzer = reference_analyzer();
  const auto eager = analyzer.evaluate(-1.5);
  const auto strict = analyzer.evaluate(1.5);
  EXPECT_LT(eager.system_fn, strict.system_fn);
  EXPECT_GT(eager.system_fp, strict.system_fp);
  EXPECT_GT(eager.recall_rate, strict.recall_rate);
}

TEST(TradeoffAnalyzer, SystemRatesAreBoundedByHumanResponse) {
  // Even a perfect machine cannot push system FN below the "given prompt"
  // floor, nor a useless one above the "silent" ceiling (weighted).
  const auto analyzer = reference_analyzer();
  const auto perfect = analyzer.evaluate(-50.0);  // prompts everything
  const auto useless = analyzer.evaluate(50.0);   // prompts nothing
  // With prompts everywhere: FN = E[PHf|Ms] over cancer classes.
  EXPECT_NEAR(perfect.system_fn, 0.9 * 0.14 + 0.1 * 0.4, 1e-6);
  // With no prompts: FN = E[PHf|Mf].
  EXPECT_NEAR(useless.system_fn, 0.9 * 0.18 + 0.1 * 0.9, 1e-6);
  // FP side mirrors: prompts everywhere maximises false recalls.
  EXPECT_GT(perfect.system_fp, useless.system_fp);
}

TEST(TradeoffAnalyzer, MetricsAreConsistent) {
  const auto analyzer = reference_analyzer(0.01);
  const auto point = analyzer.evaluate(0.3);
  EXPECT_NEAR(point.sensitivity, 1.0 - point.system_fn, 1e-12);
  EXPECT_NEAR(point.specificity, 1.0 - point.system_fp, 1e-12);
  EXPECT_NEAR(point.recall_rate,
              0.01 * point.sensitivity + 0.99 * point.system_fp, 1e-12);
  EXPECT_NEAR(point.ppv, 0.01 * point.sensitivity / point.recall_rate, 1e-12);
  EXPECT_GT(point.ppv, 0.0);
  EXPECT_LT(point.ppv, 1.0);
}

TEST(TradeoffAnalyzer, SweepPreservesOrder) {
  const auto analyzer = reference_analyzer();
  const std::vector<double> thresholds{-1.0, 0.0, 1.0};
  const auto points = analyzer.sweep(thresholds);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(points[i].threshold, thresholds[i]);
  }
}

TEST(TradeoffAnalyzer, CostMinimiserRespondsToCostRatio) {
  const auto analyzer = reference_analyzer();
  // Expensive misses => eager machine (low threshold); expensive recalls =>
  // strict machine (high threshold).
  const auto miss_averse = analyzer.minimise_cost(1000.0, 1.0, -3.0, 3.0, 61);
  const auto recall_averse = analyzer.minimise_cost(1.0, 1000.0, -3.0, 3.0, 61);
  EXPECT_LT(miss_averse.threshold, recall_averse.threshold);
  EXPECT_THROW(static_cast<void>(
                   analyzer.minimise_cost(-1.0, 1.0, -3.0, 3.0, 10)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(
                   analyzer.minimise_cost(1.0, 1.0, 3.0, -3.0, 10)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::core
