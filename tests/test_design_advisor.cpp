// Unit tests for core/design_advisor.hpp (Section 6 design guidance).
#include "core/design_advisor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/paper_example.hpp"

namespace hmdiv::core {
namespace {

DesignAdvisor field_advisor() {
  return DesignAdvisor(paper::example_model(), paper::field_profile());
}

TEST(DesignAdvisor, ValidatesProfile) {
  const DemandProfile wrong({"x", "y"}, {0.5, 0.5});
  EXPECT_THROW(DesignAdvisor(paper::example_model(), wrong),
               std::invalid_argument);
}

TEST(DesignAdvisor, AnalyticGainEqualsExactGain) {
  // Eq. (9) is linear in PMf at fixed human response, so the first-order
  // gain is exact.
  const auto advisor = field_advisor();
  for (std::size_t x = 0; x < 2; ++x) {
    ImprovementCandidate c;
    c.name = "improve class " + std::to_string(x);
    c.class_index = x;
    c.factor = paper::kImprovementFactor;
    const auto effect = advisor.evaluate(c);
    EXPECT_NEAR(effect.absolute_gain(), effect.analytic_gain, 1e-12) << x;
  }
  ImprovementCandidate uniform;
  uniform.name = "all";
  uniform.factor = 0.5;
  const auto effect = advisor.evaluate(uniform);
  EXPECT_NEAR(effect.absolute_gain(), effect.analytic_gain, 1e-12);
}

TEST(DesignAdvisor, RankPutsDifficultClassFirst) {
  const auto advisor = field_advisor();
  ImprovementCandidate easy{"easy x10", paper::kEasy, 0.1};
  ImprovementCandidate difficult{"difficult x10", paper::kDifficult, 0.1};
  const auto ranked = advisor.rank({easy, difficult});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].name, "difficult x10");
  EXPECT_GT(ranked[0].absolute_gain(), ranked[1].absolute_gain());
}

TEST(DesignAdvisor, BestTargetClassIsDifficult) {
  // Leverage p(x)·t(x)·PMf(x): easy = 0.9·0.04·0.07 ≈ 0.0025,
  // difficult = 0.1·0.5·0.41 = 0.0205.
  EXPECT_EQ(field_advisor().best_target_class(), paper::kDifficult);
}

TEST(DesignAdvisor, DiagnosisQuantifiesFloorAndCovariance) {
  const auto d = field_advisor().diagnose();
  EXPECT_NEAR(d.system_failure, 0.189, 5e-4);
  EXPECT_NEAR(d.floor, 0.9 * 0.14 + 0.1 * 0.4, 1e-12);  // 0.166
  EXPECT_NEAR(d.machine_addressable_fraction, 1.0 - d.floor / d.system_failure,
              1e-12);
  EXPECT_GT(d.covariance, 0.0);
  EXPECT_GT(d.correlation, 0.9);  // two classes: near-perfect alignment
  ASSERT_EQ(d.class_leverage.size(), 2u);
  EXPECT_NEAR(d.class_leverage[paper::kEasy], 0.9 * 0.04 * 0.07, 1e-12);
  EXPECT_NEAR(d.class_leverage[paper::kDifficult], 0.1 * 0.5 * 0.41, 1e-12);
}

TEST(DesignAdvisor, ZeroFactorRealisesFullLeverage) {
  // Perfecting the machine on a class gains exactly its leverage.
  const auto advisor = field_advisor();
  const auto d = advisor.diagnose();
  for (std::size_t x = 0; x < 2; ++x) {
    ImprovementCandidate c{"perfect", x, 0.0};
    EXPECT_NEAR(advisor.evaluate(c).absolute_gain(), d.class_leverage[x],
                1e-12)
        << x;
  }
}

TEST(DesignAdvisor, UniformCandidateUsesAllClasses) {
  const auto advisor = field_advisor();
  ImprovementCandidate uniform{"uniform", ImprovementCandidate::kAllClasses,
                               0.1};
  ImprovementCandidate easy{"easy", paper::kEasy, 0.1};
  ImprovementCandidate difficult{"difficult", paper::kDifficult, 0.1};
  const double total = advisor.evaluate(uniform).absolute_gain();
  const double parts = advisor.evaluate(easy).absolute_gain() +
                       advisor.evaluate(difficult).absolute_gain();
  EXPECT_NEAR(total, parts, 1e-12);  // linearity in PMf
}

TEST(DesignAdvisor, MemoisedEvaluateMatchesExplicitModelTransform) {
  // evaluate() re-sums Eq. (8) from memoised tables instead of building an
  // improved model; the result must equal the explicit transform exactly.
  const auto advisor = field_advisor();
  const auto& m = advisor.model();
  const auto& profile = advisor.profile();
  for (const double factor : {0.0, 0.1, 0.7, 1.0, 2.5}) {
    for (std::size_t x = 0; x < m.class_count(); ++x) {
      ImprovementCandidate c{"class", x, factor};
      const auto effect = advisor.evaluate(c);
      EXPECT_EQ(effect.baseline_failure,
                m.system_failure_probability(profile));
      EXPECT_EQ(effect.improved_failure,
                m.with_machine_improvement(x, factor)
                    .system_failure_probability(profile))
          << "x=" << x << " factor=" << factor;
    }
    ImprovementCandidate all{"all", ImprovementCandidate::kAllClasses,
                             factor};
    EXPECT_EQ(advisor.evaluate(all).improved_failure,
              m.with_uniform_machine_improvement(factor)
                  .system_failure_probability(profile))
        << "factor=" << factor;
  }
}

TEST(DesignAdvisor, EvaluateValidatesLikeTheModelTransforms) {
  const auto advisor = field_advisor();
  ImprovementCandidate out_of_range{"bad", 99, 0.5};
  EXPECT_THROW(static_cast<void>(advisor.evaluate(out_of_range)),
               std::invalid_argument);
  ImprovementCandidate negative{"bad", paper::kEasy, -0.5};
  EXPECT_THROW(static_cast<void>(advisor.evaluate(negative)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hmdiv::core
